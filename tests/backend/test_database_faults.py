"""SimulatedBackend under an injected fault plan."""

import pytest

from repro.backend import BackendError, SimulatedBackend
from repro.faults import (BackendErrorBurst, BackendSpike, FaultInjector,
                          FaultPlan)


def test_no_faults_is_the_plain_path():
    plain = SimulatedBackend()
    armed = SimulatedBackend(faults=FaultInjector(FaultPlan()))
    for key in range(50):
        assert armed.fetch(key, 100) == plain.fetch(key, 100)
    assert armed.errors == 0


def test_spike_multiplies_cost_inside_the_window():
    inj = FaultInjector(FaultPlan([BackendSpike(10, 20, 3.0)]))
    backend = SimulatedBackend(faults=inj)
    reference = SimulatedBackend()
    base = reference.fetch(7, 100)
    assert backend.fetch(7, 100, tick=5) == pytest.approx(base)
    assert backend.fetch(7, 100, tick=15) == pytest.approx(3.0 * base)
    assert backend.fetch(7, 100, tick=20) == pytest.approx(base)


def test_error_burst_raises_and_counts():
    inj = FaultInjector(FaultPlan([BackendErrorBurst(0, 100, 1.0)]))
    backend = SimulatedBackend(faults=inj)
    with pytest.raises(BackendError, match="tick 5"):
        backend.fetch(1, 100, tick=5)
    assert backend.errors == 1
    assert inj.counters["backend_error"] == 1
    assert backend.fetches == 0  # a failed fetch is not a fetch
    # outside the window the fetch succeeds
    assert backend.fetch(1, 100, tick=100) > 0


def test_tick_defaults_to_the_injector_clock():
    inj = FaultInjector(FaultPlan([BackendErrorBurst(0, 10, 1.0)]))
    backend = SimulatedBackend(faults=inj)
    inj.advance()  # tick 0: inside the burst
    with pytest.raises(BackendError):
        backend.fetch(1, 100)
    while inj.advance() < 10:
        pass
    assert backend.fetch(1, 100) > 0  # tick 10: burst over
