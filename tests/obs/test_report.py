"""Tests for dump directories, schema validation and the HTML report."""

import json
import os

from repro.obs import Registry
from repro.obs.report import (load_dump, render_html, render_report,
                              validate_dump, write_dump)
from repro.obs.spans import SpanTracer
from repro.obs.timeline import TimelineRecorder

import pytest


def _sample_timeline() -> TimelineRecorder:
    rec = TimelineRecorder(stride=10)
    rec.snapshot_fn = lambda: ({1: 2, 3: 1}, {(1, 0): 2, (3, 0): 1})
    for t in range(25):
        rec.record_get(t, hit=(t % 3 != 0), cost=0.001 if t % 3 else 0.2,
                       penalty=0.2)
    rec.note_decision(2.0, 1.0, "approved")
    rec.note_migration()
    rec.note_eviction()
    rec.finish()
    return rec


def _sample_tracer() -> SpanTracer:
    tr = SpanTracer()
    root = tr.start_trace(3, "get", key="k")
    bad = tr.start("node_attempt", 3, node="node0", rank=0, failover=False)
    bad.add_event("retry", 3, attempt=1)
    tr.end(bad, 4, status="failed")
    ok = tr.start("node_attempt", 4, node="node1", rank=1, failover=True)
    tr.end(ok, 5, status="ok")
    tr.end(root, 5, status="ok")
    return tr


def _sample_registry() -> Registry:
    r = Registry()
    h = r.histogram("sim_service_time_seconds", "svc", policy="pama")
    for v in (0.001, 0.002, 0.3):
        h.record(v)
    r.counter("cache_gets_total").inc(3)
    return r


class TestDumpRoundtrip:
    def test_write_load_validate(self, tmp_path):
        d = str(tmp_path / "dump")
        written = write_dump(d, meta={"scenario": "x", "seed": 7},
                             registry=_sample_registry(),
                             timeline=_sample_timeline(),
                             tracer=_sample_tracer())
        assert len(written) == 4
        dump = load_dump(d)
        assert dump["meta"]["seed"] == 7
        assert len(dump["timeline"]) == 3
        assert len(dump["traces"]) == 1
        assert dump["snapshot"]["counters"]
        assert validate_dump(dump) == []

    def test_partial_dump_loads_with_defaults(self, tmp_path):
        d = str(tmp_path / "dump")
        write_dump(d, meta={"run": 1})
        dump = load_dump(d)
        assert dump["timeline"] == []
        assert dump["traces"] == []
        assert validate_dump(dump) == []

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dump(str(tmp_path / "nope"))


class TestValidation:
    def _valid(self, tmp_path) -> dict:
        d = str(tmp_path / "dump")
        write_dump(d, timeline=_sample_timeline(),
                   tracer=_sample_tracer())
        return load_dump(d)

    def test_missing_row_fields_reported(self, tmp_path):
        dump = self._valid(tmp_path)
        del dump["timeline"][0]["hit_ratio"]
        errors = validate_dump(dump)
        assert any("hit_ratio" in e for e in errors)

    def test_unordered_rows_reported(self, tmp_path):
        dump = self._valid(tmp_path)
        dump["timeline"].reverse()
        assert any("ordered" in e for e in validate_dump(dump))

    def test_hits_exceeding_gets_reported(self, tmp_path):
        dump = self._valid(tmp_path)
        dump["timeline"][0]["hits"] = dump["timeline"][0]["gets"] + 5
        assert any("exceed" in e for e in validate_dump(dump))

    def test_dangling_parent_reported(self, tmp_path):
        dump = self._valid(tmp_path)
        dump["traces"][0][1]["parent_id"] = 999
        assert any("dangling" in e for e in validate_dump(dump))

    def test_rootless_trace_reported(self, tmp_path):
        dump = self._valid(tmp_path)
        dump["traces"][0][0]["parent_id"] = 12345
        errors = validate_dump(dump)
        assert any("root" in e for e in errors)


class TestRenderHtml:
    def test_report_is_self_contained_and_complete(self, tmp_path):
        d = str(tmp_path / "dump")
        write_dump(d, meta={"scenario": "node-flap"},
                   registry=_sample_registry(),
                   timeline=_sample_timeline(), tracer=_sample_tracer())
        doc = render_html(load_dump(d))
        # self-contained: no external fetches
        assert "http://" not in doc and "https://" not in doc
        assert "<svg" in doc
        assert "Hit ratio per window" in doc
        assert "Slab allocation per size class" in doc
        assert "Migration summary" in doc
        assert "Tail latency" in doc
        assert "node_attempt" in doc  # waterfall bars
        assert "prefers-color-scheme: dark" in doc
        assert "node-flap" in doc

    def test_html_escaping_of_hostile_names(self):
        tr = SpanTracer()
        root = tr.start_trace(0, "<script>alert(1)</script>", key="<k&>")
        tr.end(root, 1)
        doc = render_html({"meta": {"note": "<img src=x>"},
                           "timeline": [], "traces": tr.trace_dicts(),
                           "snapshot": {}})
        assert "<script>alert(1)</script>" not in doc
        assert "&lt;script&gt;" in doc
        assert "<img src=x>" not in doc

    def test_empty_dump_renders_placeholders(self):
        doc = render_html({"meta": {}, "timeline": [], "traces": [],
                           "snapshot": {}})
        assert "No timeline" in doc
        assert "No span traces" in doc

    def test_render_report_end_to_end(self, tmp_path):
        d = str(tmp_path / "dump")
        write_dump(d, timeline=_sample_timeline())
        out = str(tmp_path / "r.html")
        assert render_report(d, out) == []
        assert os.path.getsize(out) > 1000

    def test_render_report_rejects_invalid_dump(self, tmp_path):
        d = str(tmp_path / "dump")
        write_dump(d, timeline=_sample_timeline())
        # corrupt a row on disk
        path = os.path.join(d, "timeline.jsonl")
        rows = [json.loads(line) for line in open(path)]
        del rows[0]["gets"]
        with open(path, "w") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")
        with pytest.raises(ValueError, match="invalid dump"):
            render_report(d, str(tmp_path / "r.html"))

    def test_many_classes_fold_into_other(self):
        rec = TimelineRecorder(stride=10)
        rec.snapshot_fn = lambda: ({c: c + 1 for c in range(12)}, {})
        for t in range(10):
            rec.record_get(t, hit=True, cost=0.001)
        rec.finish()
        doc = render_html({"meta": {}, "timeline": rec.rows, "traces": [],
                           "snapshot": {}})
        assert "Other" in doc
