"""Unit tests for the obs event trace ring buffer."""

import pytest

from repro.obs import EventTrace


class TestEventTrace:
    def test_record_and_inspect(self):
        t = EventTrace(capacity=8)
        t.record("eviction", 10, key="a", size=64)
        t.record("slab_migration", 11, donor=(0, 1), receiver=(0, 2))
        assert len(t) == 2
        assert t.recorded == 2
        assert t.dropped == 0
        assert t.kinds() == {"eviction": 1, "slab_migration": 1}
        (ev,) = t.of_kind("eviction")
        assert ev.tick == 10
        assert ev.as_dict() == {"kind": "eviction", "tick": 10,
                                "key": "a", "size": 64}

    def test_payload_keys_never_shadow_event_fields(self):
        # Regression: a payload named "kind" or "tick" used to overwrite
        # the event's own kind/tick in as_dict().
        t = EventTrace(capacity=4)
        t.record("breaker_transition", 7, kind="flaky", tick=999, node="n0")
        (ev,) = t
        d = ev.as_dict()
        assert d["kind"] == "breaker_transition"
        assert d["tick"] == 7
        assert d["data_kind"] == "flaky"
        assert d["data_tick"] == 999
        assert d["node"] == "n0"
        assert t.snapshot()[0]["tick"] == 7

    def test_ring_drops_oldest(self):
        t = EventTrace(capacity=3)
        for i in range(5):
            t.record("e", i)
        assert len(t) == 3
        assert t.recorded == 5
        assert t.dropped == 2
        assert [e.tick for e in t] == [2, 3, 4]

    def test_snapshot_tail(self):
        t = EventTrace(capacity=10)
        for i in range(4):
            t.record("e", i)
        assert [d["tick"] for d in t.snapshot()] == [0, 1, 2, 3]
        assert [d["tick"] for d in t.snapshot(last=2)] == [2, 3]

    def test_clear(self):
        t = EventTrace(capacity=4)
        t.record("e", 1)
        t.clear()
        assert len(t) == 0
        assert t.recorded == 0
        assert t.kinds() == {}

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)
