"""Tests for snapshot/JSON/Prometheus export and snapshot diffing."""

import json

from repro.obs import (EventTrace, Registry, diff_snapshots, flat_items,
                       format_diff, snapshot, to_json, to_prometheus)


def _populated_registry() -> Registry:
    r = Registry()
    r.counter("cache_gets_total", "GET lookups").inc(5)
    r.gauge("cache_items", "live items").set(3)
    h = r.histogram("latency_seconds", "cmd latency", lo=1e-3, growth=2.0,
                    nbuckets=8, cmd="get")
    for v in (0.002, 0.004, 0.5):
        h.record(v)
    return r


class TestSnapshot:
    def test_structure(self):
        doc = snapshot(_populated_registry(), meta={"run": "x"})
        assert doc["meta"] == {"run": "x"}
        assert doc["counters"][0]["name"] == "cache_gets_total"
        assert doc["counters"][0]["value"] == 5
        (hist,) = doc["histograms"]
        assert hist["labels"] == {"cmd": "get"}
        assert hist["count"] == 3
        assert hist["min"] == 0.002
        assert set(hist["quantiles"]) == {"p50", "p90", "p99", "p999"}

    def test_includes_events_when_given(self):
        trace = EventTrace(capacity=4)
        trace.record("eviction", 1, key="k")
        doc = snapshot(Registry(), events=trace)
        assert doc["events"]["recorded"] == 1
        assert doc["events"]["kinds"] == {"eviction": 1}
        assert doc["events"]["tail"][0]["key"] == "k"


class TestJson:
    def test_output_is_valid_json_with_inf_spelled_out(self):
        text = to_json(_populated_registry())
        doc = json.loads(text)  # must parse
        (hist,) = doc["histograms"]
        assert hist["buckets"][-1][0] == "+Inf"
        assert hist["buckets"][-1][1] == 3


class TestPrometheus:
    def test_exposition_format(self):
        text = to_prometheus(_populated_registry())
        lines = text.splitlines()
        assert "# TYPE cache_gets_total counter" in lines
        assert "cache_gets_total 5" in lines
        assert "# TYPE latency_seconds histogram" in lines
        assert 'latency_seconds_bucket{cmd="get",le="+Inf"} 3' in lines
        assert 'latency_seconds_count{cmd="get"} 3' in lines
        assert text.endswith("\n")

    def test_label_escaping(self):
        r = Registry()
        r.counter("c", label='va"l\\ue').inc()
        text = to_prometheus(r)
        assert r'label="va\"l\\ue"' in text

    def test_label_newline_escaped(self):
        r = Registry()
        r.counter("c", label="two\nlines").inc()
        text = to_prometheus(r)
        assert r'label="two\nlines"' in text
        # a raw newline inside a label would start a bogus sample line
        assert all(line.count('"') % 2 == 0 for line in text.splitlines())

    def test_help_text_escaping(self):
        r = Registry()
        r.counter("c", help="uses \\ and\nwraps").inc()
        text = to_prometheus(r)
        assert r"# HELP c uses \\ and\nwraps" in text.splitlines()

    def test_backslash_escaped_before_other_escapes(self):
        # A literal backslash-n in a label must not collapse into the
        # \n escape sequence (ordering bug if quote/newline ran first).
        r = Registry()
        r.counter("c", label="a\\nb").inc()
        text = to_prometheus(r)
        assert r'label="a\\nb"' in text


class TestFlatItems:
    def test_counters_intified_and_histograms_expanded(self):
        items = dict(flat_items(_populated_registry()))
        assert items["cache_gets_total"] == 5
        assert isinstance(items["cache_gets_total"], int)
        assert items["latency_seconds{cmd=get}_count"] == 3
        assert "latency_seconds{cmd=get}_p99" in items
        # stats wire format: keys must not contain spaces
        assert all(" " not in k for k in items)

    def test_histograms_can_be_skipped(self):
        items = dict(flat_items(_populated_registry(), histograms=False))
        assert "cache_gets_total" in items
        assert not any(k.startswith("latency_seconds") for k in items)


class TestDiff:
    def test_diff_and_format(self):
        r = _populated_registry()
        old = snapshot(r)
        r.counter("cache_gets_total").inc(7)
        r.gauge("cache_items").set(1)
        r.histogram("latency_seconds", cmd="get").record(0.008)
        deltas = diff_snapshots(old, snapshot(r))
        assert deltas["cache_gets_total"] == 7
        assert deltas["cache_items"] == -2
        assert deltas["latency_seconds{cmd=get}_count"] == 1
        rendered = format_diff(deltas)
        assert "cache_gets_total" in rendered
        assert "+7" in rendered

    def test_one_sided_metrics_reported_not_raised(self):
        r = Registry()
        r.counter("fresh").inc(3)
        deltas = diff_snapshots({"counters": []}, snapshot(r))
        # A new-only metric is "added", not a delta against zero (a
        # fabricated delta would be indistinguishable from real growth).
        assert "fresh" not in deltas
        assert deltas.added["fresh"] == 3
        old_only = diff_snapshots(snapshot(r), {"counters": []})
        assert old_only.removed["fresh"] == 3
        rendered = format_diff(deltas)
        assert "fresh" in rendered and "added" in rendered
        assert "removed" in format_diff(old_only)

    def test_counter_reset_reported_not_negative(self):
        old_r, new_r = Registry(), Registry()
        old_r.counter("restarts").inc(100)
        new_r.counter("restarts").inc(2)  # process restarted
        deltas = diff_snapshots(snapshot(old_r), snapshot(new_r))
        # A monotone series going down means a restart, not -98.
        assert "restarts" not in deltas
        assert deltas.resets["restarts"] == 2
        assert "reset" in format_diff(deltas)

    def test_gauge_decrease_is_a_plain_delta(self):
        old_r, new_r = Registry(), Registry()
        old_r.gauge("items").set(10)
        new_r.gauge("items").set(4)
        deltas = diff_snapshots(snapshot(old_r), snapshot(new_r))
        assert deltas["items"] == -6  # gauges may legitimately fall
        assert not deltas.resets

    def test_format_diff_skips_zero_rows(self):
        assert format_diff({"a": 0.0}) == "(no change)"
        assert "a" in format_diff({"a": 0.0}, skip_zero=False)
