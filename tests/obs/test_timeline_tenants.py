"""Per-tenant timeline cells and their back-compat guarantees."""

from repro.obs.timeline import TimelineRecorder, merge_rows


def test_tenant_cells_accumulate_per_window():
    tl = TimelineRecorder(stride=10)
    tl.record_get(0, True, 1e-4, tenant=0)
    tl.record_get(1, False, 0.5, 0.5, tenant=0)
    tl.record_get(2, False, 0.25, 0.25, tenant=1)
    tl.finish()
    assert len(tl.rows) == 1
    cells = tl.rows[0]["tenants"]
    assert cells["0"] == {"gets": 2, "hits": 1,
                          "service": 1e-4 + 0.5, "penalty": 0.5}
    assert cells["1"] == {"gets": 1, "hits": 0,
                          "service": 0.25, "penalty": 0.25}


def test_untagged_gets_emit_empty_tenant_map():
    tl = TimelineRecorder(stride=10)
    tl.record_get(0, True, 1e-4)
    tl.record_get(1, False, 0.5, 0.5)
    tl.finish()
    row = tl.rows[0]
    assert row["tenants"] == {}
    assert row["gets"] == 2  # global counters are unaffected


def test_nan_penalty_miss_skips_tenant_penalty():
    tl = TimelineRecorder(stride=10)
    tl.record_get(0, False, 0.1, float("nan"), tenant=2)
    tl.finish()
    cell = tl.rows[0]["tenants"]["2"]
    assert cell["gets"] == 1 and cell["penalty"] == 0.0


def test_merge_rows_adds_tenant_cells():
    tl = TimelineRecorder(stride=5)
    for tick in range(10):
        tl.record_get(tick, tick % 2 == 0, 0.1, 0.0 if tick % 2 == 0
                      else 0.1, tenant=tick % 2)
    tl.finish()
    assert len(tl.rows) == 2
    merged = merge_rows(tl.rows[0], tl.rows[1])
    assert merged["tenants"]["0"]["gets"] == \
        (tl.rows[0]["tenants"]["0"]["gets"]
         + tl.rows[1]["tenants"]["0"]["gets"])
    assert merged["gets"] == 10


def test_merge_rows_tolerates_pre_tenancy_rows():
    tl = TimelineRecorder(stride=5)
    for tick in range(10):
        tl.record_get(tick, True, 0.1, tenant=0 if tick >= 5 else -1)
    tl.finish()
    old, new = tl.rows
    assert old["tenants"] == {}
    del old["tenants"]  # a row from a dump written before v2
    merged = merge_rows(old, new)
    assert merged["tenants"]["0"]["gets"] == 5
    merged_rev = merge_rows(new, dict(old))
    assert merged_rev["tenants"]["0"]["gets"] == 5
