"""Integration tests: obs wired into SlabCache, PamaPolicy, Simulator."""

import pytest

from repro import obs
from repro._util import MIB
from repro.cache import SlabCache, SizeClassConfig
from repro.obs import EventTrace, Registry
from repro.policies import make_policy
from repro.sim.simulator import simulate
from repro.traces import ETC, generate


@pytest.fixture(autouse=True)
def _global_obs_off():
    """Never leak the module-level registry across tests."""
    obs.disable()
    yield
    obs.disable()


def _small_cache(**policy_kwargs) -> SlabCache:
    return SlabCache(256 << 10, make_policy("pama", **policy_kwargs),
                     SizeClassConfig(slab_size=64 << 10))


class TestCacheInstrumentation:
    def test_unattached_cache_has_no_obs(self):
        cache = _small_cache()
        assert cache.obs is None
        assert cache.events is None

    def test_attach_obs_counts_operations(self):
        cache = _small_cache()
        cache.attach_obs(Registry(), EventTrace())
        cache.set("k", 1, 100, 0.1)
        cache.get("k")
        cache.get("missing")
        r = cache.obs
        assert r.get("cache_gets_total").value == 2
        assert r.get("cache_hits_total").value == 1
        assert r.get("cache_misses_total").value == 1
        assert r.get("cache_sets_total").value == 1

    def test_update_obs_gauges(self):
        cache = _small_cache()
        cache.attach_obs(Registry())
        cache.set("k", 1, 100, 0.1)
        cache.update_obs_gauges()
        assert cache.obs.get("cache_items").value == 1
        assert cache.obs.get("cache_slabs_total").value == cache.pool.total

    def test_pressure_records_evictions_and_events(self):
        cache = _small_cache()
        cache.attach_obs(Registry(), EventTrace())
        # Overfill a 256 KiB cache with ~1 KiB values to force evictions.
        for i in range(1500):
            cache.set(f"k{i}", 3, 1000, 0.1)
        assert cache.obs.get("cache_evictions_total").value > 0
        kinds = cache.events.kinds()
        assert "eviction" in kinds
        (ev, *_rest) = cache.events.of_kind("eviction")
        assert {"queue", "key", "penalty", "size"} <= set(ev.data)

    def test_cas_tick_increments_per_store(self):
        cache = _small_cache()
        cache.set("a", 1, 10, 0.1)
        first = cache.index["a"].cas
        cache.set("a", 1, 10, 0.1)
        assert cache.index["a"].cas == first + 1


class TestGlobalEnable:
    def test_new_cache_auto_attaches(self):
        registry = obs.enable()
        cache = _small_cache()
        assert cache.obs is registry
        assert cache.events is obs.get_event_trace()

    def test_disable_stops_auto_attach(self):
        obs.enable()
        obs.disable()
        assert not obs.is_enabled()
        assert _small_cache().obs is None


class TestSimulatorInstrumentation:
    def test_disabled_run_has_no_quantiles(self):
        trace = generate(ETC.scaled(0.1), 2_000, seed=3)
        result = simulate(trace, _small_cache(value_window=500),
                          window_gets=500)
        assert result.service_quantiles == {}
        assert result.hit_quantiles == {}
        assert result.miss_quantiles == {}

    def test_enabled_run_populates_quantiles_and_events(self):
        registry = obs.enable()
        trace = generate(ETC.scaled(0.1), 4_000, seed=3)
        result = simulate(trace, _small_cache(value_window=500),
                          window_gets=500)
        assert set(result.service_quantiles) == {"p50", "p90", "p99", "p999"}
        assert (result.service_quantiles["p50"]
                <= result.service_quantiles["p999"])
        hist = registry.get("sim_service_time_seconds", policy="pama")
        assert hist is not None
        assert hist.count == result.total_gets
        # the trace is heavy enough to exercise pressure paths
        kinds = set(obs.get_event_trace().kinds())
        assert kinds <= {"eviction", "slab_migration", "ghost_hit",
                         "pama_decision", "window_rollover"}
        assert "window_rollover" in kinds

    def test_explicit_registry_beats_global(self):
        mine = Registry()
        trace = generate(ETC.scaled(0.1), 1_000, seed=5)
        result = simulate(trace, _small_cache(value_window=500),
                          window_gets=500, obs=mine)
        assert mine.get("sim_service_time_seconds", policy="pama") is not None
        assert result.service_quantiles
