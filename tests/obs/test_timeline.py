"""Tests for the windowed timeline recorder and its sinks."""

import io
import json

import pytest

from repro.obs.timeline import (CsvSink, JsonlSink, NESTED_FIELDS,
                                SCALAR_FIELDS, TimelineRecorder, load_jsonl,
                                merge_rows, open_sink)


def _drive(recorder: TimelineRecorder, ticks: int, stride_hits=0.5):
    """Feed a deterministic GET pattern: every other request hits."""
    for t in range(ticks):
        recorder.record_get(t, hit=(t % 2 == 0), cost=0.001 if t % 2 == 0
                            else 0.1, penalty=0.1)
    recorder.finish()


class TestWindows:
    def test_rows_close_on_stride_boundaries(self):
        rec = TimelineRecorder(stride=10)
        _drive(rec, 35)
        # 3 full windows + 1 partial from finish()
        assert len(rec.rows) == 4
        assert [r["tick_start"] for r in rec.rows] == [0, 10, 20, 30]
        assert all(r["tick_end"] - r["tick_start"] == 10 for r in rec.rows)
        full = rec.rows[0]
        assert full["gets"] == 10
        assert full["hits"] == 5
        assert full["misses"] == 5
        assert full["hit_ratio"] == pytest.approx(0.5)

    def test_window_indices_and_series(self):
        rec = TimelineRecorder(stride=10)
        _drive(rec, 30)
        assert rec.series("window") == [0, 1, 2]
        assert rec.series("gets") == [10, 10, 10]

    def test_penalty_mass_counts_misses_only(self):
        rec = TimelineRecorder(stride=4)
        rec.record_get(0, hit=True, cost=0.001, penalty=9.0)
        rec.record_get(1, hit=False, cost=0.5, penalty=0.5)
        rec.record_get(2, hit=False, cost=0.25, penalty=0.25)
        rec.finish()
        assert rec.rows[0]["penalty_mass"] == pytest.approx(0.75)

    def test_nan_penalty_skipped(self):
        rec = TimelineRecorder(stride=4)
        rec.record_get(0, hit=False, cost=0.5, penalty=float("nan"))
        rec.finish()
        assert rec.rows[0]["penalty_mass"] == 0.0
        assert rec.rows[0]["misses"] == 1

    def test_sparse_trace_skips_empty_windows(self):
        rec = TimelineRecorder(stride=10)
        rec.record_get(3, hit=True, cost=0.001)
        rec.record_get(905, hit=True, cost=0.001)
        rec.finish()
        assert [r["tick_start"] for r in rec.rows] == [0, 900]

    def test_advance_rolls_without_recording(self):
        rec = TimelineRecorder(stride=10)
        rec.record_get(0, hit=True, cost=0.001)
        rec.advance(25)  # SET/DELETE far later
        rec.record_get(26, hit=False, cost=0.1, penalty=0.1)
        rec.finish()
        assert [r["gets"] for r in rec.rows] == [1, 1]

    def test_cold_notes_accumulate_into_open_window(self):
        rec = TimelineRecorder(stride=10)
        rec.record_get(0, hit=True, cost=0.001)
        rec.note_eviction()
        rec.note_migration()
        rec.note_ghost_hit()
        rec.note_decision(2.0, 1.0, "approved")
        rec.note_decision(0.5, 1.5, "declined")
        rec.finish()
        row = rec.rows[0]
        assert row["evictions"] == 1
        assert row["migrations"] == 1
        assert row["ghost_hits"] == 1
        assert row["decisions"] == {"approved": 1, "declined": 1}
        assert row["decision_count"] == 2
        assert row["eq1_incoming_sum"] == pytest.approx(2.5)
        assert row["eq2_outgoing_sum"] == pytest.approx(2.5)

    def test_quantiles_present_per_window(self):
        rec = TimelineRecorder(stride=100)
        _drive(rec, 100)
        row = rec.rows[0]
        assert 0 < row["service_p50"] <= row["service_p99"]
        assert row["service_p99"] == pytest.approx(0.1, rel=0.2)

    def test_snapshot_fn_feeds_slab_columns(self):
        rec = TimelineRecorder(stride=10)
        rec.snapshot_fn = lambda: ({2: 3, 5: 1}, {(2, 0): 2, (2, 1): 1,
                                                  (5, 0): 1})
        _drive(rec, 10)
        row = rec.rows[0]
        assert row["class_slabs"] == {"2": 3, "5": 1}
        assert row["queue_slabs"] == {"2:0": 2, "2:1": 1, "5:0": 1}
        assert rec.class_slab_series(2) == [3]
        assert rec.class_slab_series(9) == [0]

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            TimelineRecorder(stride=0)
        with pytest.raises(ValueError):
            TimelineRecorder(max_rows=1)


class TestDownsampling:
    def test_max_rows_merges_and_doubles_stride(self):
        rec = TimelineRecorder(stride=10, max_rows=4)
        _drive(rec, 100)  # 10 windows at stride 10
        assert len(rec.rows) <= 4
        # full coverage is kept: first row starts at 0, last ends at 100
        assert rec.rows[0]["tick_start"] == 0
        assert rec.rows[-1]["tick_end"] >= 100
        assert rec.stride > 10
        # totals survive merging
        assert sum(r["gets"] for r in rec.rows) == 100
        assert sum(r["hits"] for r in rec.rows) == 50

    def test_merge_rows_recomputes_means(self):
        a = {"window": 0, "tick_start": 0, "tick_end": 10, "gets": 10,
             "hits": 5, "misses": 5, "hit_ratio": 0.5, "ghost_hits": 1,
             "penalty_mass": 1.0, "avg_service_time": 0.1,
             "service_p50": 0.05, "service_p99": 0.2, "evictions": 2,
             "migrations": 1, "decisions": {"approved": 1},
             "decision_count": 1, "eq1_incoming_sum": 1.0,
             "eq2_outgoing_sum": 0.5, "class_slabs": {"1": 1},
             "queue_slabs": {"1:0": 1}}
        b = dict(a, window=1, tick_start=10, tick_end=20, gets=30, hits=30,
                 misses=0, hit_ratio=1.0, avg_service_time=0.01,
                 service_p99=0.5, decisions={"approved": 2, "self": 1},
                 decision_count=3, class_slabs={"1": 4},
                 queue_slabs={"1:0": 4})
        m = merge_rows(a, b)
        assert m["gets"] == 40
        assert m["hit_ratio"] == pytest.approx(35 / 40)
        assert m["avg_service_time"] == pytest.approx(
            (0.1 * 10 + 0.01 * 30) / 40)
        assert m["service_p99"] == 0.5  # pairwise max
        assert m["decisions"] == {"approved": 3, "self": 1}
        assert m["class_slabs"] == {"1": 4}  # later row wins
        assert m["tick_start"] == 0 and m["tick_end"] == 20


class TestSinks:
    def test_jsonl_sink_streams_every_closed_row(self):
        buf = io.StringIO()
        rec = TimelineRecorder(stride=10, sink=JsonlSink(buf),
                               keep_rows=False)
        _drive(rec, 25)
        lines = [json.loads(line) for line in
                 buf.getvalue().strip().splitlines()]
        assert len(lines) == 3
        assert lines[0]["gets"] == 10
        assert rec.rows == []  # sink-only mode retains nothing
        assert rec.rows_closed == 3

    def test_jsonl_roundtrip_via_file(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        rec = TimelineRecorder(stride=10, sink=JsonlSink(path))
        _drive(rec, 20)
        rows = load_jsonl(path)
        assert rows == rec.rows

    def test_csv_sink_header_and_nested_cells(self):
        buf = io.StringIO()
        rec = TimelineRecorder(stride=10, sink=CsvSink(buf))
        rec.snapshot_fn = lambda: ({1: 2}, {(1, 0): 2})
        _drive(rec, 10)
        lines = buf.getvalue().strip().splitlines()
        assert lines[0].split(",")[:3] == ["window", "tick_start", "tick_end"]
        assert len(lines) == 2
        # nested columns are JSON-encoded cells
        assert '""1"": 2' in lines[1] or '""1"":2' in lines[1].replace(
            ' ', '')

    def test_open_sink_by_extension(self, tmp_path):
        assert isinstance(open_sink(str(tmp_path / "a.csv")), CsvSink)
        assert isinstance(open_sink(str(tmp_path / "a.jsonl")), JsonlSink)

    def test_schema_constants_cover_row(self):
        rec = TimelineRecorder(stride=10)
        _drive(rec, 10)
        assert set(rec.rows[0]) == set(SCALAR_FIELDS) | set(NESTED_FIELDS)
