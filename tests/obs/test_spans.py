"""Tests for span tracing: lifecycle, sampling determinism, rendering."""

import pytest

from repro.obs.spans import (SpanTracer, format_waterfall, sample_draw,
                             span_children)


class TestLifecycle:
    def test_root_and_children_form_a_tree(self):
        tr = SpanTracer()
        root = tr.start_trace(5, "get", key="k1")
        child = tr.start("node_attempt", 5, node="node0")
        tr.end(child, 6, status="ok")
        tr.end(root, 7, status="ok", latency=0.1)
        (spans,) = tr.traces()
        assert [s.name for s in spans] == ["get", "node_attempt"]
        assert spans[1].parent_id == spans[0].span_id
        assert spans[0].parent_id is None
        assert spans[0].attrs == {"key": "k1", "latency": 0.1}
        assert spans[0].start_tick == 5 and spans[0].end_tick == 7

    def test_start_without_trace_returns_none_and_end_tolerates(self):
        tr = SpanTracer(sample=0.0)
        span = tr.start("node_attempt", 3)
        assert span is None
        tr.end(span, 4)  # no-op, no raise
        assert tr.traces() == []

    def test_unclosed_descendants_close_with_ancestor(self):
        tr = SpanTracer()
        root = tr.start_trace(0, "get")
        tr.start("a", 1)
        tr.start("b", 2)
        tr.end(root, 9)
        (spans,) = tr.traces()
        assert all(s.status == "ok" for s in spans)
        assert all(s.end_tick == 9 for s in spans[1:])

    def test_events_attach_to_current_span(self):
        tr = SpanTracer()
        root = tr.start_trace(0, "get")
        child = tr.start("node_attempt", 0)
        tr.event("retry", 1, attempt=1)
        tr.end(child, 2)
        tr.event("gave_up", 3)
        tr.end(root, 3)
        (spans,) = tr.traces()
        assert spans[1].events == [{"name": "retry", "tick": 1,
                                    "attempt": 1}]
        assert spans[0].events == [{"name": "gave_up", "tick": 3}]

    def test_capacity_drops_oldest_whole_traces(self):
        tr = SpanTracer(capacity=2)
        for i in range(5):
            root = tr.start_trace(i, f"op{i}")
            tr.end(root, i)
        assert len(tr.traces()) == 2
        assert tr.dropped_traces == 3
        assert [t[0].name for t in tr.traces()] == ["op3", "op4"]

    def test_record_single_is_a_one_span_trace(self):
        tr = SpanTracer()
        tr.record_single("get", 4, 4, status="ok", duration_s=0.001)
        (spans,) = tr.traces()
        assert len(spans) == 1
        assert spans[0].attrs["duration_s"] == 0.001

    def test_abandoned_trace_finished_on_next_start(self):
        tr = SpanTracer()
        tr.start_trace(0, "lost")
        tr.start_trace(1, "next")
        assert [t[0].name for t in tr.traces()] == ["lost"]
        assert tr.active

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SpanTracer(sample=1.5)
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)


class TestSampling:
    def test_extremes(self):
        assert SpanTracer(sample=1.0).sampled(123)
        assert not SpanTracer(sample=0.0).sampled(123)

    def test_deterministic_in_seed_and_tick(self):
        a = SpanTracer(sample=0.25, seed=42)
        b = SpanTracer(sample=0.25, seed=42)
        c = SpanTracer(sample=0.25, seed=43)
        picks_a = [t for t in range(2000) if a.sampled(t)]
        picks_b = [t for t in range(2000) if b.sampled(t)]
        picks_c = [t for t in range(2000) if c.sampled(t)]
        assert picks_a == picks_b
        assert picks_a != picks_c
        assert 300 < len(picks_a) < 700  # roughly 25%

    def test_draw_is_pure_and_uniformish(self):
        draws = [sample_draw(7, t) for t in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert draws == [sample_draw(7, t) for t in range(1000)]
        assert 0.45 < sum(draws) / len(draws) < 0.55


class TestRendering:
    def _trace(self):
        tr = SpanTracer()
        root = tr.start_trace(0, "get", key="k")
        a1 = tr.start("node_attempt", 0, node="node0", failover=False)
        a1.add_event("conn_drop", 0, attempt=0)
        a1.add_event("retry", 0, attempt=1)
        tr.end(a1, 1, status="failed")
        a2 = tr.start("node_attempt", 1, node="node1", failover=True)
        tr.end(a2, 2, status="ok")
        tr.end(root, 2, status="ok")
        return tr.trace_dicts()[0]

    def test_span_children_adjacency(self):
        spans = self._trace()
        children = span_children(spans)
        assert len(children[None]) == 1
        root_id = children[None][0]["span_id"]
        assert [c["name"] for c in children[root_id]] == [
            "node_attempt", "node_attempt"]

    def test_waterfall_text(self):
        text = format_waterfall(self._trace())
        lines = text.splitlines()
        assert lines[0].startswith("get ")
        assert lines[1].startswith("  node_attempt")
        assert "[conn_drop@0]" in text
        assert "[retry@0]" in text
        assert "status=failed" in text
        assert "failover=True" in text

    def test_waterfall_empty(self):
        assert format_waterfall([]) == "(empty trace)"
