"""Unit tests for the obs metrics registry."""

import random

import pytest

from repro.obs import Counter, Gauge, Histogram, Registry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    @pytest.mark.parametrize("name", ["", "9lives", "has space", "a-b"])
    def test_rejects_invalid_names(self, name):
        with pytest.raises(ValueError):
            Counter(name)

    def test_accepts_prometheus_style_names(self):
        Counter("cache_gets_total")
        Counter("repro:cache_hits")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("temperature")
        g.set(10.0)
        g.inc(5.0)
        g.dec(2.0)
        assert g.value == 13.0


class TestHistogram:
    def test_record_updates_aggregates(self):
        h = Histogram("latency_seconds", lo=1e-3, growth=2.0, nbuckets=10)
        for v in (0.002, 0.004, 0.016):
            h.record(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.022)
        assert h.mean == pytest.approx(0.022 / 3)
        assert h.min == 0.002
        assert h.max == 0.016

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Histogram("h", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("h", growth=1.0)
        with pytest.raises(ValueError):
            Histogram("h", nbuckets=0)

    def test_empty_histogram_quantiles(self):
        h = Histogram("h")
        assert h.quantile(0.5) == 0.0
        assert h.quantiles() == {}
        assert h.mean == 0.0

    def test_quantile_rejects_out_of_range(self):
        h = Histogram("h")
        for q in (0.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                h.quantile(q)

    def test_single_bucket_histogram(self):
        # Regression: bucket 0's lower bound must come from `growth`,
        # not bounds[1], which does not exist when nbuckets == 1.
        h = Histogram("h", lo=1.0, growth=2.0, nbuckets=1)
        h.record(0.8)
        assert h.quantile(0.5) == pytest.approx(0.8)

    def test_overflow_bucket_reports_max(self):
        h = Histogram("h", lo=1.0, growth=2.0, nbuckets=3)  # bounds 1,2,4
        h.record(100.0)
        assert h.quantile(1.0) == 100.0
        assert h.counts[-1] == 1

    def test_quantiles_clamped_to_observed_range(self):
        h = Histogram("h", lo=1e-6, growth=2.0, nbuckets=40)
        h.record(0.5)
        # A single sample: every quantile must be exactly that sample.
        for q in (0.01, 0.5, 0.999, 1.0):
            assert h.quantile(q) == pytest.approx(0.5)

    def test_quantile_accuracy_on_random_samples(self):
        """Estimates stay within the log-bucket relative-error bound.

        The geometric-midpoint estimator is accurate to a factor of
        sqrt(growth) within a bucket; comparing against the *exact*
        sample percentile adds at most one bucket of rank slop, so a
        factor-of-`growth` tolerance is the documented contract.
        """
        rng = random.Random(42)
        growth = 1.2
        h = Histogram("h", lo=1e-6, growth=growth, nbuckets=96)
        samples = [rng.lognormvariate(-7.0, 1.0) for _ in range(20_000)]
        for s in samples:
            h.record(s)
        samples.sort()
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = samples[min(len(samples) - 1, int(q * len(samples)))]
            estimate = h.quantile(q)
            assert exact / growth <= estimate <= exact * growth, (
                f"q={q}: estimate {estimate} vs exact {exact}")

    def test_named_quantiles_keys(self):
        h = Histogram("h")
        h.record(1.0)
        assert set(h.quantiles()) == {"p50", "p90", "p99", "p999"}

    def test_cumulative_buckets(self):
        h = Histogram("h", lo=1.0, growth=2.0, nbuckets=3)  # bounds 1,2,4
        for v in (0.5, 1.5, 3.0, 99.0):
            h.record(v)
        buckets = h.cumulative_buckets()
        assert buckets[-1] == (float("inf"), 4)
        cums = [c for _, c in buckets]
        assert cums == sorted(cums)  # cumulative counts are monotone
        assert buckets[0] == (1.0, 1)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        r = Registry()
        assert r.counter("hits") is r.counter("hits")
        assert len(r) == 1

    def test_labels_create_distinct_children(self):
        r = Registry()
        a = r.counter("cmds", cmd="get")
        b = r.counter("cmds", cmd="set")
        a.inc()
        assert a is not b
        assert b.value == 0
        # label order must not matter
        assert r.counter("multi", a="1", b="2") is r.counter(
            "multi", b="2", a="1")

    def test_type_conflict_raises(self):
        r = Registry()
        r.counter("metric")
        with pytest.raises(TypeError):
            r.gauge("metric")

    def test_get_and_collect(self):
        r = Registry()
        r.gauge("z_metric")
        r.counter("a_metric")
        assert r.get("a_metric").kind == "counter"
        assert r.get("missing") is None
        assert [m.name for m in r.collect()] == ["a_metric", "z_metric"]

    def test_histogram_kwargs_forwarded(self):
        r = Registry()
        h = r.histogram("lat", lo=0.5, growth=3.0, nbuckets=2)
        assert h.bounds == [0.5, 1.5]
