"""Tests for the counting Bloom filter extension."""

from hypothesis import given, settings, strategies as st

from repro.bloom import CountingBloomFilter


class TestCountingBloomFilter:
    def test_add_remove_roundtrip(self):
        f = CountingBloomFilter(capacity=100)
        f.add(7)
        assert 7 in f
        assert f.remove(7)
        assert 7 not in f

    def test_remove_absent_is_noop(self):
        f = CountingBloomFilter(capacity=1000, fp_rate=0.001)
        assert not f.remove(12345)
        assert f.count == 0

    def test_multiset_semantics(self):
        f = CountingBloomFilter(capacity=100)
        f.add(3)
        f.add(3)
        f.remove(3)
        assert 3 in f  # one occurrence remains
        f.remove(3)
        assert 3 not in f

    def test_no_false_negatives_under_churn(self):
        f = CountingBloomFilter(capacity=500, fp_rate=0.01)
        for k in range(300):
            f.add(k)
        for k in range(0, 300, 2):
            f.remove(k)
        for k in range(1, 300, 2):
            assert k in f

    def test_clear(self):
        f = CountingBloomFilter(capacity=10)
        f.add(1)
        f.clear()
        assert 1 not in f and f.count == 0

    def test_saturation_never_underflows(self):
        f = CountingBloomFilter(capacity=8)
        for _ in range(300):
            f.add(0)  # drive counters to saturation
        for _ in range(300):
            f.remove(0)
        # saturated counters are pinned; membership stays (documented bias)
        assert 0 in f

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=100))
    def test_members_present_property(self, keys):
        from collections import Counter
        f = CountingBloomFilter(capacity=200)
        counts = Counter()
        for k in keys:
            f.add(k)
            counts[k] += 1
        # remove half of each key's occurrences
        for k, n in counts.items():
            for _ in range(n // 2):
                f.remove(k)
        for k, n in counts.items():
            if n - n // 2 > 0:
                assert k in f
