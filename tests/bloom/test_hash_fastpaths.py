"""The ``*_hashes`` fast paths must agree with the reference construction.

The hash-once hot path computes one :func:`hash_pair` per request and
threads it through every filter; these properties pin the contract that
makes that sound: for any key, seed, filter size (power-of-two or not)
and hash count, the fast paths touch exactly the bit positions the
reference :func:`double_hashes` construction defines, and the key-based
APIs remain thin wrappers with bit-identical behaviour.
"""

from hypothesis import given, settings, strategies as st

from repro.bloom.bloom import BloomFilter
from repro.bloom.counting import CountingBloomFilter
from repro.bloom.hashing import _MASK64, double_hashes, hash_key, hash_pair
from repro.bloom.removal import RemovalFilter

#: all key types the cache accepts (bool is rejected by hash_key).
KEYS = st.one_of(
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.text(max_size=32),
    st.binary(max_size=32),
)
SEEDS = st.integers(min_value=0, max_value=2 ** 32)
#: filter widths: powers of two (the optimal_params output) and
#: arbitrary sizes that exercise the modulo fallback.
NBITS = st.one_of(st.sampled_from([8, 64, 1024, 16384]),
                  st.integers(min_value=1, max_value=5000))
NHASHES = st.integers(min_value=1, max_value=12)


class TestHashPair:
    @given(KEYS, SEEDS)
    def test_pair_matches_hash_key(self, key, seed):
        h1, h2 = hash_pair(key, seed)
        assert h1 == hash_key(key, seed)
        assert h2 & 1, "h2 must be odd (and 0 usable as an absent marker)"

    @given(KEYS, NHASHES, NBITS, SEEDS)
    def test_pair_generates_double_hashes(self, key, k, nbits, seed):
        h1, h2 = hash_pair(key, seed)
        ref = double_hashes(key, k, nbits, seed)
        assert ref == [((h1 + i * h2) & _MASK64) % nbits for i in range(k)]

    @given(KEYS, NHASHES, SEEDS,
           st.integers(min_value=3, max_value=14).map(lambda e: 1 << e))
    def test_pow2_mask_equals_modulo(self, key, k, seed, nbits):
        # the satellite fix: & (nbits-1) must equal the % nbits reference
        h1, h2 = hash_pair(key, seed)
        assert double_hashes(key, k, nbits, seed) == [
            (h1 + i * h2) & (nbits - 1) for i in range(k)]


class TestBloomFilterFastPath:
    @given(KEYS, SEEDS, NBITS, NHASHES)
    @settings(max_examples=200)
    def test_add_hashes_sets_reference_bits(self, key, seed, nbits, k):
        by_key = BloomFilter(nbits=nbits, nhashes=k, seed=seed)
        by_pair = BloomFilter(nbits=nbits, nhashes=k, seed=seed)
        by_key.add(key)
        by_pair.add_hashes(*hash_pair(key, seed))
        expected = 0
        for pos in double_hashes(key, k, nbits, seed):
            expected |= 1 << pos
        assert by_key._bits == by_pair._bits == expected
        assert key in by_key
        assert by_pair.contains_hashes(*hash_pair(key, seed))

    @given(st.lists(KEYS, max_size=8), KEYS, SEEDS, NBITS, NHASHES)
    @settings(max_examples=200)
    def test_contains_hashes_agrees_with_key_api(self, members, probe,
                                                 seed, nbits, k):
        filt = BloomFilter(nbits=nbits, nhashes=k, seed=seed)
        for m in members:
            filt.add(m)
        assert (probe in filt) == filt.contains_hashes(*hash_pair(probe, seed))

    @given(st.lists(KEYS, max_size=16), NBITS, NHASHES)
    def test_saturation_counts_set_bits(self, members, nbits, k):
        filt = BloomFilter(nbits=nbits, nhashes=k)
        for m in members:
            filt.add(m)
        assert filt.saturation() == bin(filt._bits).count("1") / nbits


class TestRemovalFilterFastPath:
    @given(st.lists(KEYS, max_size=8), KEYS, SEEDS)
    def test_masks_agrees_with_key_api(self, removed, probe, seed):
        by_key = RemovalFilter(64, seed=seed)
        by_pair = RemovalFilter(64, seed=seed)
        for r in removed:
            by_key.mark_removed(r)
            by_pair.mark_removed_hashes(*hash_pair(r, seed))
        assert by_key._filter._bits == by_pair._filter._bits
        assert by_key.masks(probe) == by_pair.masks_hashes(
            *hash_pair(probe, seed))

    @given(st.lists(KEYS, max_size=8), KEYS, SEEDS)
    def test_on_segment_add_agrees_with_key_api(self, removed, added, seed):
        by_key = RemovalFilter(64, seed=seed)
        by_pair = RemovalFilter(64, seed=seed)
        for r in removed:
            by_key.mark_removed(r)
            by_pair.mark_removed(r)
        by_key.on_segment_add(added)
        by_pair.on_segment_add_hashes(*hash_pair(added, seed))
        assert by_key.clears == by_pair.clears
        assert by_key._filter._bits == by_pair._filter._bits


class TestCountingFilterFastPath:
    @given(st.lists(KEYS, max_size=8), KEYS, SEEDS)
    def test_add_remove_contains_agree(self, members, probe, seed):
        by_key = CountingBloomFilter(64, seed=seed)
        by_pair = CountingBloomFilter(64, seed=seed)
        for m in members:
            by_key.add(m)
            by_pair.add_hashes(*hash_pair(m, seed))
        assert by_key._counts == by_pair._counts
        assert (probe in by_key) == by_pair.contains_hashes(
            *hash_pair(probe, seed))
        assert by_key.remove(probe) == by_pair.remove_hashes(
            *hash_pair(probe, seed))
        assert by_key._counts == by_pair._counts
