"""Tests for the hash functions behind the Bloom filters."""

import pytest
from hypothesis import given, strategies as st

from repro.bloom.hashing import double_hashes, fnv1a64, hash_key, splitmix64


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {splitmix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000  # no collision in a small range

    def test_output_is_64bit(self):
        for i in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(i) < 2**64

    def test_avalanche(self):
        # flipping one input bit should flip roughly half the output bits
        a, b = splitmix64(0x1234), splitmix64(0x1235)
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_range_property(self, x):
        assert 0 <= splitmix64(x) < 2**64


class TestFnv1a64:
    def test_known_vector(self):
        # FNV-1a("") is the offset basis
        assert fnv1a64(b"") == 0xCBF29CE484222325

    def test_differs_by_content(self):
        assert fnv1a64(b"hello") != fnv1a64(b"hellp")

    def test_order_sensitive(self):
        assert fnv1a64(b"ab") != fnv1a64(b"ba")


class TestHashKey:
    def test_int_and_str_supported(self):
        assert isinstance(hash_key(123), int)
        assert isinstance(hash_key("abc"), int)
        assert isinstance(hash_key(b"abc"), int)

    def test_str_matches_equivalent_bytes(self):
        assert hash_key("key") == hash_key(b"key")

    def test_seed_changes_hash(self):
        assert hash_key(99, seed=1) != hash_key(99, seed=2)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            hash_key(True)

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            hash_key(3.14)

    def test_negative_int_ok(self):
        assert 0 <= hash_key(-5) < 2**64


class TestDoubleHashes:
    def test_count_and_range(self):
        positions = double_hashes(7, k=5, nbits=128)
        assert len(positions) == 5
        assert all(0 <= p < 128 for p in positions)

    def test_deterministic(self):
        assert double_hashes("x", 4, 64) == double_hashes("x", 4, 64)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            double_hashes(1, k=0, nbits=64)
        with pytest.raises(ValueError):
            double_hashes(1, k=3, nbits=0)

    @given(st.integers(min_value=0, max_value=2**32), st.integers(1, 16),
           st.sampled_from([64, 128, 1024, 4096]))
    def test_positions_in_range(self, key, k, nbits):
        for p in double_hashes(key, k, nbits):
            assert 0 <= p < nbits
