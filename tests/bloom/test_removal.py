"""Tests for the removal filter's clear-on-readd semantics."""

from repro.bloom import RemovalFilter


class TestRemovalFilter:
    def test_masks_removed_keys(self):
        rf = RemovalFilter(capacity=100)
        rf.mark_removed(5)
        assert rf.masks(5)
        assert not rf.masks(6) or True  # false positives allowed, no crash

    def test_clear_on_readd_of_removed_key(self):
        rf = RemovalFilter(capacity=100)
        rf.mark_removed(5)
        rf.mark_removed(6)
        rf.on_segment_add(5)  # 5 re-enters a segment → filter must clear
        assert rf.clears == 1
        assert not rf.masks(5)
        assert not rf.masks(6)  # clearing drops everything, per the paper

    def test_no_clear_on_add_of_unremoved_key(self):
        rf = RemovalFilter(capacity=1000, fp_rate=0.001)
        rf.mark_removed(1)
        rf.on_segment_add(999_999)
        # almost surely no collision at 0.1% fp with 1 member
        assert rf.clears == 0
        assert rf.masks(1)

    def test_counters(self):
        rf = RemovalFilter(capacity=10)
        for k in range(7):
            rf.mark_removed(k)
        assert rf.removals == 7
        assert len(rf) == 7

    def test_manual_clear(self):
        rf = RemovalFilter(capacity=10)
        rf.mark_removed(1)
        rf.clear()
        assert not rf.masks(1)
        assert rf.clears == 0  # manual clears are not re-add clears
