"""Tests for the plain Bloom filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bloom import BloomFilter
from repro.bloom.bloom import optimal_params


class TestOptimalParams:
    def test_reasonable_sizing(self):
        nbits, nhashes = optimal_params(1000, 0.01)
        # ~9.6 bits/key for 1% fp, rounded up to a power of two
        assert nbits >= 9600
        assert nbits & (nbits - 1) == 0
        assert 1 <= nhashes <= 20

    def test_lower_fp_needs_more_bits(self):
        loose, _ = optimal_params(1000, 0.1)
        tight, _ = optimal_params(1000, 0.001)
        assert tight > loose

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_params(0, 0.01)
        with pytest.raises(ValueError):
            optimal_params(100, 0.0)
        with pytest.raises(ValueError):
            optimal_params(100, 1.0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        f = BloomFilter(capacity=500, fp_rate=0.01)
        keys = list(range(500))
        for k in keys:
            f.add(k)
        assert all(k in f for k in keys)

    def test_fresh_filter_is_empty(self):
        f = BloomFilter(capacity=100)
        assert 42 not in f
        assert len(f) == 0

    def test_false_positive_rate_near_target(self):
        f = BloomFilter(capacity=1000, fp_rate=0.01, seed=7)
        for k in range(1000):
            f.add(k)
        false_positives = sum(1 for k in range(10_000, 30_000) if k in f)
        assert false_positives / 20_000 < 0.05  # generous margin over 1%

    def test_clear(self):
        f = BloomFilter(capacity=100)
        for k in range(100):
            f.add(k)
        f.clear()
        assert len(f) == 0
        assert sum(1 for k in range(100) if k in f) == 0

    def test_saturation_monotone(self):
        f = BloomFilter(capacity=200)
        assert f.saturation() == 0.0
        prev = 0.0
        for k in range(200):
            f.add(k)
            sat = f.saturation()
            assert sat >= prev
            prev = sat
        assert 0.0 < f.estimated_fp_rate() < 1.0

    def test_string_keys(self):
        f = BloomFilter(capacity=10)
        f.add("alpha")
        assert "alpha" in f
        assert "beta" not in f or True  # may be a false positive; no crash

    def test_seed_isolation(self):
        a = BloomFilter(capacity=100, seed=1)
        b = BloomFilter(capacity=100, seed=2)
        a.add(12345)
        # b uses a different hash family; 12345 almost surely absent
        assert 12345 in a

    def test_explicit_geometry(self):
        f = BloomFilter(nbits=64, nhashes=2)
        assert f.nbits == 64 and f.nhashes == 2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter(nbits=0, nhashes=2)

    @settings(max_examples=50)
    @given(st.sets(st.integers(min_value=0, max_value=10**9), max_size=200))
    def test_membership_property(self, keys):
        f = BloomFilter(capacity=max(len(keys), 1), fp_rate=0.01)
        for k in keys:
            f.add(k)
        assert all(k in f for k in keys)
