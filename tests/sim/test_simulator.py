"""Tests for the trace-driven simulator."""

import numpy as np
import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.policies import StaticMemcachedPolicy
from repro.core import PamaPolicy, PamaConfig
from repro.sim import ServiceTimeModel, Simulator, simulate
from repro.traces import ETC, Op, Trace, generate


def build_cache(slabs=32, policy=None):
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    return SlabCache(slabs * 4096, policy or StaticMemcachedPolicy(), classes)


def manual_trace(rows):
    """rows: (op, key, vsize, penalty)."""
    n = len(rows)
    return Trace(np.array([r[0] for r in rows], np.uint8),
                 np.array([r[1] for r in rows], np.int64),
                 np.full(n, 8, np.int32),
                 np.array([r[2] for r in rows], np.int32),
                 np.array([r[3] for r in rows], np.float64))


class TestServiceTimeModel:
    def test_constant_hit(self):
        m = ServiceTimeModel(hit_time=1e-4)
        assert m.hit(10_000) == 1e-4
        assert m.miss(0.7) == 0.7

    def test_bandwidth_term(self):
        m = ServiceTimeModel(hit_time=1e-4, bandwidth=1e6)
        assert m.hit(1_000_000) == pytest.approx(1.0001)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ServiceTimeModel(hit_time=-1)
        with pytest.raises(ValueError):
            ServiceTimeModel(bandwidth=0)


class TestSimulator:
    def test_fill_on_miss_turns_repeat_into_hit(self):
        trace = manual_trace([
            (Op.GET, 1, 100, 0.5),
            (Op.GET, 1, 100, 0.5),
        ])
        result = simulate(trace, build_cache(), window_gets=10)
        assert result.total_gets == 2
        assert result.hit_ratio == 0.5
        # first GET cost the penalty, second a hit
        assert result.avg_service_time == pytest.approx((0.5 + 1e-4) / 2)

    def test_no_fill_keeps_missing(self):
        trace = manual_trace([(Op.GET, 1, 100, 0.5)] * 3)
        result = simulate(trace, build_cache(), fill_on_miss=False)
        assert result.hit_ratio == 0.0
        assert result.cache_stats["sets"] == 0

    def test_sets_and_deletes_applied(self):
        trace = manual_trace([
            (Op.SET, 1, 100, 0.2),
            (Op.GET, 1, 100, 0.2),
            (Op.DELETE, 1, 100, 0.2),
            (Op.GET, 1, 100, 0.2),
        ])
        result = simulate(trace, build_cache(), window_gets=10)
        assert result.hit_ratio == 0.5
        assert result.cache_stats["deletes"] == 1

    def test_windows_and_snapshots(self):
        trace = generate(ETC.scaled(0.02), 30_000, seed=1)
        result = simulate(trace, build_cache(slabs=64), window_gets=5_000)
        assert len(result.windows) >= 5
        assert result.windows[0].class_slabs  # snapshot captured
        series = result.class_slab_series(0)
        assert len(series) == len(result.windows)

    def test_queue_slab_series_with_pama(self):
        trace = generate(ETC.scaled(0.02), 30_000, seed=1)
        cache = build_cache(slabs=64,
                            policy=PamaPolicy(PamaConfig(value_window=5_000)))
        result = simulate(trace, cache, window_gets=5_000)
        assert result.policy == "pama"
        # at least one subclass beyond bin 0 exists in the snapshots
        bins = {qid[1] for w in result.windows for qid in w.queue_slabs}
        assert len(bins) > 1

    def test_result_aggregates_match_cache_stats(self):
        trace = generate(ETC.scaled(0.02), 10_000, seed=2)
        cache = build_cache(slabs=64)
        result = simulate(trace, cache, window_gets=2_000)
        assert result.total_gets == cache.stats.gets
        assert result.hit_ratio == pytest.approx(cache.stats.hit_ratio)

    def test_deterministic(self):
        trace = generate(ETC.scaled(0.02), 10_000, seed=3)
        r1 = simulate(trace, build_cache(slabs=32), window_gets=2_000)
        r2 = simulate(trace, build_cache(slabs=32), window_gets=2_000)
        assert r1.hit_ratio == r2.hit_ratio
        assert r1.avg_service_time == pytest.approx(r2.avg_service_time)


class TestSimulatorReuse:
    """Regression: run() must not inherit the previous run's metrics.

    Before the fix, the collector built in __init__ was reused across
    run() calls, so a second run reported the union of both runs'
    windows and totals (skewing repeat-pass experiments like Fig 7).
    """

    def test_second_run_reports_identical_results(self):
        # After run 1, key 1 is resident, so run 2 replays identically
        # (all hits) over the warm cache — identical results, unless
        # stale metrics leak across runs.
        trace = manual_trace([(Op.SET, 1, 100, 0.5)]
                             + [(Op.GET, 1, 100, 0.5)] * 4)
        sim = Simulator(build_cache(), window_gets=2)
        r1 = sim.run(trace)
        r2 = sim.run(trace)
        assert r2.total_gets == trace.num_gets
        assert len(r2.windows) == len(r1.windows)
        assert r2.hit_ratio == r1.hit_ratio
        assert r2.avg_service_time == pytest.approx(r1.avg_service_time)

    def test_totals_are_per_run_not_cumulative(self):
        trace = generate(ETC.scaled(0.02), 10_000, seed=5)
        sim = Simulator(build_cache(slabs=64), window_gets=2_000)
        sim.run(trace)
        r2 = sim.run(trace)
        assert r2.total_gets == trace.num_gets  # pre-fix: 2x
        # windows restart from index 0 each run
        assert [w.index for w in r2.windows] == list(range(len(r2.windows)))

    def test_partial_window_does_not_leak_into_next_run(self):
        # 3 GETs with window_gets=2 leaves a flushed partial window;
        # the next run must start from an empty collector.
        trace = manual_trace([(Op.GET, k, 100, 0.1) for k in range(3)])
        sim = Simulator(build_cache(), window_gets=2)
        sim.run(trace)
        r2 = sim.run(trace)
        assert sum(w.gets for w in r2.windows) == 3
        assert r2.windows[0].gets == 2 and r2.windows[1].gets == 1
