"""Differential pin: the optimized replay engine vs the seed engine.

The hash-once / allocation-free overhaul (hash pair threaded through the
policy callbacks, scalar ``SlabCache.lookup``, columnar replay loop with
a precomputed miss-cost array) must not change *any* simulation output.
The constants below were produced by the pre-optimization engine on a
mixed GET/SET/DELETE trace and are asserted exactly (``==``, not
approx): every float must match bit-for-bit, every counter must match
to the unit.  The exact-tracker configurations cover the full PAMA
machinery (segment tracker, ghost lists, value accumulators, slab
migration) plus the memcached baseline.
"""

import random

import numpy as np

from repro.cache import SizeClassConfig, SlabCache
from repro.policies import make_policy
from repro.sim.simulator import simulate
from repro.traces.record import Trace

#: policy -> (total_gets, hit_ratio, avg_service_time, evictions,
#: migrations) as produced by the seed replay engine on mixed_trace().
SEED_RESULTS = {
    "memcached": (31968, 0.7724286786786787, 0.09354627439945866, 4608, 0),
    "pre-pama": (31968, 0.8480668168168168, 0.06371160848345903, 1318, 20),
    "pama": (31968, 0.7140890890890891, 0.11643821321329532, 7091, 5289),
}

KWARGS = {"pama": {"value_window": 10_000},
          "pre-pama": {"value_window": 10_000}}


def mixed_trace(n=40_000, seed=1234):
    """Mixed GET/SET/DELETE trace — must stay byte-identical forever.

    80% GET / 15% SET / 5% DELETE over 3000 keys, five value sizes and
    five penalty levels; any change to the construction invalidates the
    pinned constants above.
    """
    rng = random.Random(seed)
    ops, keys, ks, vs, pens = [], [], [], [], []
    sizes = (48, 150, 700, 2600, 9000)
    penalties = (0.0004, 0.004, 0.04, 0.4, 1.6)
    for _ in range(n):
        r = rng.random()
        op = 0 if r < 0.80 else (1 if r < 0.95 else 2)
        ops.append(op)
        keys.append(rng.randrange(3000))
        ks.append(16)
        vs.append(rng.choice(sizes))
        pens.append(rng.choice(penalties))
    return Trace(np.array(ops, dtype=np.uint8),
                 np.array(keys, dtype=np.int64),
                 np.array(ks, dtype=np.int32),
                 np.array(vs, dtype=np.int32),
                 np.array(pens, dtype=np.float64),
                 meta={"name": "mixed"})


class TestReplayDifferential:
    def _run(self, policy):
        cache = SlabCache(8 << 20,
                          make_policy(policy, **KWARGS.get(policy, {})),
                          SizeClassConfig(slab_size=64 << 10))
        return simulate(mixed_trace(), cache, window_gets=10_000)

    def test_memcached_bit_identical_to_seed(self):
        self._check("memcached")

    def test_pre_pama_bit_identical_to_seed(self):
        self._check("pre-pama")

    def test_pama_bit_identical_to_seed(self):
        self._check("pama")

    def _check(self, policy):
        result = self._run(policy)
        gets, hit_ratio, avg_service, evictions, migrations = \
            SEED_RESULTS[policy]
        assert result.total_gets == gets
        # exact equality on purpose: the optimization must not perturb a
        # single float operation, let alone a hit/miss decision.
        assert result.hit_ratio == hit_ratio
        assert result.avg_service_time == avg_service
        assert result.cache_stats["evictions"] == evictions
        assert result.cache_stats["migrations"] == migrations
