"""Tests for the experiment runner."""

import pytest

from repro._util import MIB
from repro.sim import ExperimentSpec, run_comparison, sweep_cache_sizes
from repro.traces import ETC, generate


@pytest.fixture(scope="module")
def trace():
    return generate(ETC.scaled(0.02), 20_000, seed=4)


@pytest.fixture
def spec():
    return ExperimentSpec(name="t", cache_bytes=2 * MIB, slab_size=64 * 1024,
                          window_gets=5_000,
                          policy_kwargs={"psa": {"m_misses": 100}})


class TestExperimentSpec:
    def test_build_cache_applies_kwargs(self, spec):
        cache = spec.build_cache("psa")
        assert cache.policy.m_misses == 100
        assert cache.pool.total == 2 * MIB // (64 * 1024)

    def test_fresh_cache_per_build(self, spec):
        a = spec.build_cache("pama")
        b = spec.build_cache("pama")
        assert a is not b and a.policy is not b.policy

    def test_describe(self, spec):
        assert "2.0MiB" in spec.describe()


class TestRunComparison:
    def test_all_policies_run(self, trace, spec):
        cmp = run_comparison(trace, spec, ["memcached", "psa", "pama"])
        assert set(cmp.results) == {"memcached", "psa", "pama"}
        for r in cmp.results.values():
            assert r.total_gets == trace.num_gets

    def test_rankings(self, trace, spec):
        cmp = run_comparison(trace, spec, ["memcached", "pama"])
        by_service = cmp.ranking_by_service_time()
        assert by_service[0][1] <= by_service[1][1]
        by_hits = cmp.ranking_by_hit_ratio()
        assert by_hits[0][1] >= by_hits[1][1]

    def test_progress_callback(self, trace, spec):
        seen = []
        run_comparison(trace, spec, ["memcached"],
                       progress=lambda n, r: seen.append(n))
        assert seen == ["memcached"]


class TestSweep:
    def test_sweep_sizes(self, trace, spec):
        out = sweep_cache_sizes(trace, spec, ["memcached"],
                                [1 * MIB, 4 * MIB])
        assert set(out) == {1 * MIB, 4 * MIB}
        # a bigger cache can't hit less on an LRU-style workload replay
        small = out[1 * MIB].results["memcached"].hit_ratio
        large = out[4 * MIB].results["memcached"].hit_ratio
        assert large >= small - 0.02
