"""Tests for report rendering."""

import pytest

from repro.sim.report import ascii_chart, format_table, series_csv


class TestFormatTable:
    def test_alignment_and_rows(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long-name" in lines[3]
        # all lines equal width
        assert len({len(l) for l in lines}) == 1

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.00001234], [123456.7]])
        assert "1.234e-05" in text
        assert "1.235e+05" in text


class TestSeriesCsv:
    def test_shared_index(self):
        csv = series_csv({"a": [1.0, 2.0], "b": [3.0]})
        lines = csv.strip().splitlines()
        assert lines[0] == "window,a,b"
        assert lines[1] == "0,1,3"
        assert lines[2] == "1,2,"  # ragged series padded with empty

    def test_empty(self):
        assert series_csv({}) == "window\n"


class TestComparisonSummary:
    def test_renders_policy_rows(self):
        from repro._util import MIB
        from repro.sim import ExperimentSpec, run_comparison
        from repro.sim.report import comparison_summary
        from repro.traces import ETC, generate

        trace = generate(ETC.scaled(0.02), 4_000, seed=17)
        spec = ExperimentSpec(name="s", cache_bytes=1 * MIB,
                              slab_size=64 * 1024, window_gets=1_000)
        cmp = run_comparison(trace, spec, ["memcached", "pama"])
        text = comparison_summary(cmp.results)
        assert "memcached" in text and "pama" in text
        assert "avg_service_ms" in text
        assert len(text.splitlines()) == 4


class TestAsciiChart:
    def test_renders_series_and_legend(self):
        chart = ascii_chart({"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
                            width=20, height=5, title="test chart")
        assert "test chart" in chart
        assert "A=up" in chart and "B=down" in chart
        assert "A" in chart and "B" in chart

    def test_flat_series_no_crash(self):
        chart = ascii_chart({"flat": [1.0, 1.0, 1.0]}, width=10, height=4)
        assert "A=flat" in chart

    def test_empty(self):
        assert ascii_chart({}) == "(no data)"
        assert ascii_chart({"x": []}) == "(no data)"

    def test_nan_skipped(self):
        chart = ascii_chart({"x": [1.0, float("nan"), 2.0]}, width=10,
                            height=4)
        assert "A=x" in chart
