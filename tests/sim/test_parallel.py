"""Tests for the multi-core experiment runner."""

import pytest

from repro._util import MIB
from repro.sim import ExperimentSpec, run_comparison
from repro.sim.parallel import (default_workers, run_comparison_parallel,
                                sweep_parallel)
from repro.traces import ETC, generate


@pytest.fixture(scope="module")
def trace():
    return generate(ETC.scaled(0.02), 15_000, seed=31)


@pytest.fixture
def spec():
    return ExperimentSpec(name="par", cache_bytes=2 * MIB,
                          slab_size=64 * 1024, window_gets=5_000,
                          policy_kwargs={"pama": {"value_window": 5_000}})


class TestParallelRunner:
    def test_matches_serial_results(self, trace, spec):
        policies = ["memcached", "psa", "pama"]
        serial = run_comparison(trace, spec, policies)
        parallel = run_comparison_parallel(trace, spec, policies,
                                           max_workers=2)
        for name in policies:
            s, p = serial.results[name], parallel.results[name]
            assert s.hit_ratio == p.hit_ratio, name
            assert s.avg_service_time == pytest.approx(p.avg_service_time)
            assert s.cache_stats["migrations"] == p.cache_stats["migrations"]

    def test_sweep_parallel_matches_shape(self, trace, spec):
        sizes = [1 * MIB, 2 * MIB]
        out = sweep_parallel(trace, spec, ["memcached", "pama"], sizes,
                             max_workers=2)
        assert set(out) == set(sizes)
        for size in sizes:
            assert set(out[size].results) == {"memcached", "pama"}
            assert out[size].spec.cache_bytes == size

    def test_default_workers_positive(self):
        assert default_workers() >= 1
