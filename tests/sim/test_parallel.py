"""Tests for the parallel experiment engine (run_grid and wrappers)."""

import os
import time
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro._util import MIB
from repro.sim import ExperimentSpec, run_comparison
from repro.sim.parallel import (GridFailure, GridTask, _drain_futures,
                                default_jobs, default_workers,
                                run_comparison_parallel, run_grid, size_specs,
                                sweep_parallel)
from repro.traces import ETC, compile_trace, generate


@pytest.fixture(scope="module")
def trace():
    return generate(ETC.scaled(0.02), 15_000, seed=31)


@pytest.fixture
def spec():
    return ExperimentSpec(name="par", cache_bytes=2 * MIB,
                          slab_size=64 * 1024, window_gets=5_000,
                          policy_kwargs={"pama": {"value_window": 5_000}})


def result_fingerprint(r):
    return (r.hit_ratio, r.avg_service_time, r.total_gets,
            tuple(r.hit_ratio_series()), tuple(r.service_time_series()),
            r.cache_stats["migrations"], r.cache_stats["evictions"],
            tuple(sorted(r.final_class_slabs.items())))


class TestRunGrid:
    POLICIES = ["memcached", "psa", "pama"]

    def test_serial_matches_parallel_exactly(self, trace, spec):
        specs = size_specs(spec, [1 * MIB, 2 * MIB, 4 * MIB])
        serial = run_grid(trace, specs, self.POLICIES, jobs=1)
        parallel = run_grid(trace, specs, self.POLICIES, jobs=4)
        assert serial.ok and parallel.ok
        assert list(serial.results) == list(parallel.results)
        for key in serial.results:
            assert result_fingerprint(serial.results[key]) \
                == result_fingerprint(parallel.results[key]), key

    def test_merge_order_is_task_order(self, trace, spec):
        specs = size_specs(spec, [1 * MIB, 2 * MIB])
        grid = run_grid(trace, specs, self.POLICIES, jobs=2)
        expected = [(s.name, p) for s in specs for p in self.POLICIES]
        assert list(grid.results) == expected

    def test_shuffled_specs_produce_same_cells(self, trace, spec):
        specs = size_specs(spec, [1 * MIB, 2 * MIB])
        fwd = run_grid(trace, specs, self.POLICIES, jobs=2)
        rev = run_grid(trace, list(reversed(specs)),
                       list(reversed(self.POLICIES)), jobs=2)
        assert set(fwd.results) == set(rev.results)
        for key in fwd.results:
            assert result_fingerprint(fwd.results[key]) \
                == result_fingerprint(rev.results[key]), key

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failed_cell_does_not_kill_the_sweep(self, trace, spec, jobs):
        grid = run_grid(trace, [spec], ["memcached", "no-such-policy"],
                        jobs=jobs)
        assert not grid.ok
        assert set(grid.results) == {("par", "memcached")}
        failure = grid.failures[("par", "no-such-policy")]
        assert isinstance(failure, GridFailure)
        assert "no-such-policy" in failure.error
        with pytest.raises(RuntimeError, match="no-such-policy"):
            grid.raise_failures()

    def test_progress_sees_every_cell(self, trace, spec):
        seen = []
        grid = run_grid(trace, [spec], ["memcached", "no-such-policy"],
                        progress=lambda t, r, f: seen.append(
                            (t.policy, r is not None, f is not None)))
        assert sorted(seen) == [("memcached", True, False),
                                ("no-such-policy", False, True)]
        assert len(grid.results) + len(grid.failures) == 2

    def test_duplicate_cells_rejected(self, trace, spec):
        with pytest.raises(ValueError, match="duplicate"):
            run_grid(trace, [spec, spec], ["memcached"])

    def test_comparison_views(self, trace, spec):
        specs = size_specs(spec, [1 * MIB, 2 * MIB])
        grid = run_grid(trace, specs, ["memcached", "pama"], jobs=1)
        cmps = grid.comparisons()
        assert list(cmps) == [s.name for s in specs]
        for s in specs:
            assert set(cmps[s.name].results) == {"memcached", "pama"}
            assert cmps[s.name].spec.cache_bytes == s.cache_bytes

    def test_jobs_none_uses_default(self, trace, spec):
        grid = run_grid(trace, [spec], ["memcached"], jobs=None)
        assert grid.jobs >= 1
        assert grid.ok

    def test_matches_run_comparison(self, trace, spec):
        cmp = run_comparison(trace, spec, self.POLICIES)
        grid = run_grid(trace, [spec], self.POLICIES, jobs=4)
        for name in self.POLICIES:
            assert result_fingerprint(cmp.results[name]) \
                == result_fingerprint(grid.results[("par", name)]), name


class TestCompiledTraceGrid:
    def test_compiled_grid_matches_in_memory(self, trace, spec, tmp_path):
        compiled = compile_trace(trace, tmp_path / "grid.ctrc")
        compiled.window = 4_096  # several windows per cell
        specs = size_specs(spec, [1 * MIB, 2 * MIB])
        policies = ["memcached", "pama"]
        baseline = run_grid(trace, specs, policies, jobs=1)
        streamed = run_grid(compiled, specs, policies, jobs=2)
        assert baseline.ok and streamed.ok
        assert list(baseline.results) == list(streamed.results)
        for key in baseline.results:
            assert result_fingerprint(baseline.results[key]) \
                == result_fingerprint(streamed.results[key]), key


class _CrashSpec(ExperimentSpec):
    """Spec whose ``die`` policy kills the worker process outright."""

    def build_cache(self, policy):
        if policy == "die":
            time.sleep(0.3)  # let batch-mates finish first
            os._exit(13)
        return super().build_cache(policy)


class TestBrokenPoolDrain:
    """Regression: a BrokenProcessPool in one future of a completed
    batch must not drop the *other* completed futures in that batch
    (pre-fix, the drain loop bailed out without recording them)."""

    @staticmethod
    def _task(name):
        return GridTask(0, ExperimentSpec(name=name, cache_bytes=MIB),
                        "memcached")

    def test_batch_mate_of_broken_future_is_recorded(self, monkeypatch):
        f_ok, f_broken, f_pending = Future(), Future(), Future()
        f_ok.set_result("completed-result")
        f_broken.set_exception(BrokenProcessPool("worker died"))
        futures = {f_broken: self._task("broken"),
                   f_ok: self._task("ok"),
                   f_pending: self._task("pending")}

        # Deterministic batch: the broken future is *first* in the done
        # set, with a genuinely completed batch-mate behind it.
        def fake_wait(pending, return_when=None):
            assert f_pending in pending
            return [f_broken, f_ok], {f_pending}

        monkeypatch.setattr("repro.sim.parallel.wait", fake_wait)

        recorded = {}
        _drain_futures(futures, lambda t, r, f: recorded.update(
            {t.spec.name: (r, f)}))

        assert set(recorded) == {"broken", "ok", "pending"}
        result, failure = recorded["ok"]
        assert result == "completed-result" and failure is None
        assert isinstance(recorded["broken"][1], GridFailure)
        assert isinstance(recorded["pending"][1], GridFailure)
        assert "BrokenProcessPool" in recorded["pending"][1].error

    def test_worker_death_fails_cell_not_sweep(self, spec):
        trace = generate(ETC.scaled(0.01), 500, seed=7)
        crash = _CrashSpec(name="crash", cache_bytes=2 * MIB,
                           slab_size=64 * 1024)
        grid = run_grid(trace, [crash], ["memcached", "die"], jobs=2)
        assert not grid.ok
        # Every cell is accounted for — none silently vanished.
        assert set(grid.results) | set(grid.failures) \
            == {("crash", "memcached"), ("crash", "die")}
        assert "BrokenProcessPool" in grid.failures[("crash", "die")].error
        # The memcached cell finished well before the 0.3 s crash, so
        # the fixed drain must have kept its completed result.
        assert ("crash", "memcached") in grid.results


class TestParallelWrappers:
    def test_matches_serial_results(self, trace, spec):
        policies = ["memcached", "psa", "pama"]
        serial = run_comparison(trace, spec, policies)
        parallel = run_comparison_parallel(trace, spec, policies,
                                           max_workers=2)
        for name in policies:
            s, p = serial.results[name], parallel.results[name]
            assert s.hit_ratio == p.hit_ratio, name
            assert s.avg_service_time == pytest.approx(p.avg_service_time)
            assert s.cache_stats["migrations"] == p.cache_stats["migrations"]

    def test_sweep_parallel_matches_shape(self, trace, spec):
        sizes = [1 * MIB, 2 * MIB]
        out = sweep_parallel(trace, spec, ["memcached", "pama"], sizes,
                             max_workers=2)
        assert set(out) == set(sizes)
        for size in sizes:
            assert set(out[size].results) == {"memcached", "pama"}
            assert out[size].spec.cache_bytes == size

    def test_default_workers_positive(self):
        assert default_jobs() >= 1
        assert default_workers is default_jobs
