"""Simulator <-> timeline/tracing wiring: golden series and purity.

Two contracts from the observability PR are pinned here:

1. A fixed-seed PAMA replay produces a *golden* per-class slab-count
   timeline — any change to the allocator, migration logic, or the
   recorder's windowing shows up as a diff against these values.
2. Attaching a timeline (or not) never changes simulation results:
   the instrumented branch is observational only.
"""

import pytest

from repro import obs
from repro._util import MIB
from repro.cache import SlabCache, SizeClassConfig
from repro.policies import make_policy
from repro.sim import ServiceTimeModel, Simulator, simulate
from repro.traces import ETC, generate

REQUESTS = 20_000
STRIDE = 5_000
SEED = 11


def _fresh_cache() -> SlabCache:
    return SlabCache(4 * MIB, make_policy("pama", value_window=STRIDE),
                     SizeClassConfig(slab_size=64 << 10))


def _trace():
    return generate(ETC.scaled(0.2), REQUESTS, seed=SEED)


class TestGoldenSlabSeries:
    """Fixed-seed PAMA run asserted against pinned per-window values.

    If an intentional allocator/policy change shifts these, regenerate
    with the same seed/config and update the constants — the point is
    that the shift is *seen*, not that these numbers are sacred.
    """

    @pytest.fixture(scope="class")
    def run(self):
        timeline = obs.TimelineRecorder(stride=STRIDE)
        sim = Simulator(_fresh_cache(), ServiceTimeModel(),
                        window_gets=STRIDE, timeline=timeline)
        result = sim.run(_trace())
        return timeline, result

    def test_window_layout(self, run):
        timeline, result = run
        assert timeline.series("window") == [0, 1, 2, 3]
        assert timeline.series("gets") == [4627, 4608, 4592, 4621]
        assert sum(timeline.series("gets")) == result.total_gets

    def test_per_class_slab_series(self, run):
        timeline, _ = run
        golden = {
            0: [5, 6, 5, 5],
            3: [5, 5, 5, 7],
            5: [6, 7, 8, 10],
            8: [8, 7, 8, 12],
            10: [9, 11, 10, 3],
        }
        for cls, series in golden.items():
            assert timeline.class_slab_series(cls) == series, f"class {cls}"

    def test_migration_flux_series(self, run):
        timeline, _ = run
        assert timeline.series("migrations") == [12, 65, 189, 317]

    def test_decision_outcomes_recorded(self, run):
        timeline, _ = run
        first = timeline.rows[0]["decisions"]
        assert first == {"approved": 5, "declined": 34, "forced": 7}
        total = sum(sum(r["decisions"].values()) for r in timeline.rows)
        assert total == sum(timeline.series("decision_count"))

    def test_final_window_matches_result_snapshot(self, run):
        timeline, result = run
        last = timeline.rows[-1]["class_slabs"]
        assert last == {str(c): n for c, n in
                        result.final_class_slabs.items() if n}


class TestObservationalPurity:
    """Timeline/tracing attachment must not perturb the simulation."""

    def _fields(self, result) -> tuple:
        return (result.policy, result.hit_ratio, result.avg_service_time,
                result.total_gets, result.cache_stats, result.windows,
                result.final_class_slabs, result.final_queue_slabs)

    def test_timeline_attached_results_identical(self):
        trace = _trace()
        plain = simulate(trace, _fresh_cache(), window_gets=STRIDE)
        timed = simulate(trace, _fresh_cache(), window_gets=STRIDE,
                         timeline=obs.TimelineRecorder(stride=STRIDE))
        assert self._fields(plain) == self._fields(timed)

    def test_disabled_run_is_repeatable_bit_identical(self):
        trace = _trace()
        a = simulate(trace, _fresh_cache(), window_gets=STRIDE)
        b = simulate(trace, _fresh_cache(), window_gets=STRIDE)
        assert self._fields(a) == self._fields(b)

    def test_hit_ratio_agrees_with_timeline(self):
        timeline = obs.TimelineRecorder(stride=STRIDE)
        result = simulate(_trace(), _fresh_cache(), window_gets=STRIDE,
                          timeline=timeline)
        hits = sum(timeline.series("hits"))
        gets = sum(timeline.series("gets"))
        assert hits / gets == pytest.approx(result.hit_ratio)


class TestRecorderRebindsPerRun:
    """Regression: a recorder reused across runs snapshots the *current*
    cache.

    ``snapshot_fn`` used to be set only when it was still ``None``, so a
    TimelineRecorder that outlived its first simulator kept snapshotting
    the first cache it met — the Fig 3/4 slab series silently froze.
    Both rebinding sites (``SlabCache.attach_timeline`` and the
    simulator's attach fallback) now re-point the hook every run.
    """

    def test_reused_recorder_snapshots_second_cache(self):
        trace = _trace()
        timeline = obs.TimelineRecorder(stride=STRIDE)
        first = SlabCache(2 * MIB, make_policy("pama", value_window=STRIDE),
                          SizeClassConfig(slab_size=64 << 10))
        simulate(trace, first, window_gets=STRIDE, timeline=timeline)
        second = _fresh_cache()  # 4 MiB: ends with a different layout
        result = simulate(trace, second, window_gets=STRIDE,
                          timeline=timeline)
        assert (first.class_slab_distribution()
                != second.class_slab_distribution())
        # The run-2 rows carry run-2 snapshots (pre-fix they showed the
        # 2 MiB cache's frozen layout) ...
        assert timeline.rows[-1]["class_slabs"] == {
            str(c): n for c, n in result.final_class_slabs.items() if n}
        # ... and the live hook points at the second cache.
        cls_now, queues_now = timeline.snapshot_fn()
        assert cls_now == second.class_slab_distribution()
        assert queues_now == second.slab_distribution()

    def test_attach_timeline_always_rebinds(self):
        timeline = obs.TimelineRecorder(stride=STRIDE)
        stale = lambda: ({}, {})  # noqa: E731 - stand-in for an old bind
        timeline.snapshot_fn = stale
        cache = _fresh_cache()
        cache.attach_timeline(timeline)
        assert timeline.snapshot_fn is not stale
        assert timeline.snapshot_fn() == (cache.class_slab_distribution(),
                                          cache.slab_distribution())
