"""Property tests: the vectorized derive pass vs its scalar references.

Every derived column must agree element-wise with the scalar function
the replay loop used to call per request — ``hash_key`` /
``class_for_size`` / ``PamaConfig.bin_for`` / ``shard_of`` — and the
derived replay loop must produce ``==``-identical results to the scalar
loop end to end.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import MIB
from repro.bloom.hashing import (PAIR_SEED_DELTA, hash_key, hash_key_array,
                                 hash_pair, hash_pair_arrays, key_shard,
                                 key_shard_array)
from repro.cache import SlabCache, SizeClassConfig
from repro.cache.sizeclasses import InvalidItemError, ItemTooLargeError
from repro.core.config import PamaConfig
from repro.obs import TimelineRecorder
from repro.policies import make_policy
from repro.sim.derive import (class_index_array, derive_unsupported_reason,
                              penalty_bin_array)
from repro.sim.simulator import simulate
from repro.traces.record import Trace

INT64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


class TestHashParity:
    @given(st.lists(INT64, max_size=64),
           st.sampled_from([0, 1, PAIR_SEED_DELTA, 0x51A8D]))
    @settings(max_examples=60, deadline=None)
    def test_hash_key_array_matches_scalar(self, keys, seed):
        got = hash_key_array(np.array(keys, dtype=np.int64), seed)
        assert got.dtype == np.uint64
        assert got.tolist() == [hash_key(k, seed) for k in keys]

    @given(st.lists(INT64, min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_hash_pair_arrays_matches_scalar_pair(self, keys):
        h1, h2 = hash_pair_arrays(np.array(keys, dtype=np.int64))
        pairs = [hash_pair(k) for k in keys]
        assert h1.tolist() == [p[0] for p in pairs]
        assert h2.tolist() == [p[1] for p in pairs]
        # h2 odd: 0 stays the "pair absent" sentinel everywhere.
        assert all(v & 1 for v in h2.tolist())

    def test_uint64_column_accepted(self):
        keys = np.array([0, 1, 2 ** 64 - 1], dtype=np.uint64)
        got = hash_key_array(keys)
        assert got.tolist() == [hash_key(int(k)) for k in keys.tolist()]


class TestClassIndexParity:
    @pytest.fixture(scope="class")
    def classes(self):
        return SizeClassConfig(slab_size=64 << 10, base_size=64)

    def scalar_index(self, classes, ks, vs):
        """The lookup path's scalar semantics, sentinels included."""
        if ks < 0:
            return -1
        try:
            return classes.class_for_size(ks + vs)
        except ItemTooLargeError:
            return -1
        except InvalidItemError:
            return -2

    @given(st.lists(st.tuples(
        st.integers(min_value=-64, max_value=256),
        st.integers(min_value=-256, max_value=1 << 20)), max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar(self, classes, rows):
        ks = np.array([r[0] for r in rows], dtype=np.int32)
        vs = np.array([r[1] for r in rows], dtype=np.int32)
        got = class_index_array(ks, vs, classes).tolist()
        assert got == [self.scalar_index(classes, k, v) for k, v in rows]

    def test_sentinel_precedence(self, classes):
        # unknown key size wins over invalid item size: the scalar path
        # never validates a "miss details unknown" row.
        got = class_index_array(np.array([-1, 10, 10]),
                                np.array([-5, -20, 64 << 20]),
                                classes).tolist()
        assert got == [-1, -2, -1]


class TestPenaltyBinParity:
    CONFIG = PamaConfig(penalty_edges=(0.001, 0.01, 0.1, 1.0))

    @given(st.lists(st.one_of(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=-10.0, max_value=-1e-9),
        st.just(float("nan")), st.just(float("inf"))), max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar(self, penalties):
        got = penalty_bin_array(np.array(penalties, dtype=np.float64),
                                self.CONFIG.penalty_edges).tolist()
        for value, idx in zip(penalties, got):
            if math.isnan(value) or value < 0:
                assert idx == -1  # sentinel: consumer re-dispatches
            else:
                assert idx == self.CONFIG.bin_for(value)

    def test_empty_edges_single_bin(self):
        got = penalty_bin_array(np.array([0.0, 5.0, -1.0, float("nan")]),
                                ()).tolist()
        assert got == [0, 0, -1, -1]


class TestShardParity:
    @given(st.lists(INT64, max_size=64),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_key_shard_array_matches_scalar(self, keys, nshards):
        got = key_shard_array(np.array(keys, dtype=np.int64),
                              nshards).tolist()
        assert got == [key_shard(k, nshards) for k in keys]


def _mixed_trace(n=20_000, seed=13):
    rng = random.Random(seed)
    ops, keys, ks, vs, pens = [], [], [], [], []
    for _ in range(n):
        r = rng.random()
        ops.append(0 if r < 0.8 else (1 if r < 0.95 else 2))
        keys.append(rng.randrange(3000))
        ks.append(16)
        vs.append(rng.choice((40, 200, 900, 3000, 70000)))
        pens.append(rng.choice((0.0005, 0.005, 0.05, 0.5, 2.0)))
    return Trace(np.array(ops, np.uint8), np.array(keys, np.int64),
                 np.array(ks, np.int32), np.array(vs, np.int32),
                 np.array(pens, np.float64))


def _result_tuple(r):
    return (r.total_gets, r.hit_ratio, r.avg_service_time, r.cache_stats,
            r.final_class_slabs, r.final_queue_slabs,
            [(w.index, w.gets, w.hits, w.penalty_sum, w.service_sum)
             for w in r.windows])


class TestDerivedReplayEquivalence:
    @pytest.mark.parametrize("policy,kwargs", [
        ("memcached", {}),
        ("pre-pama", {"value_window": 5000}),
        ("pama", {"value_window": 5000}),
        ("pama", {"value_window": 5000, "tracker": "bloom"}),
    ])
    def test_forced_derive_matches_scalar(self, policy, kwargs):
        trace = _mixed_trace()
        out = {}
        for derive in (False, True):
            cache = SlabCache(4 * MIB, make_policy(policy, **kwargs),
                              SizeClassConfig(slab_size=64 << 10))
            out[derive] = _result_tuple(
                simulate(trace, cache, window_gets=5000, derive=derive))
        assert out[False] == out[True]


class TestDeriveGating:
    def _cache(self, policy="pama", **kwargs):
        kwargs.setdefault("value_window", 5000)
        return SlabCache(4 * MIB, make_policy(policy, **kwargs),
                         SizeClassConfig(slab_size=64 << 10))

    def test_supported_for_static_bins(self):
        cache = self._cache()
        assert derive_unsupported_reason(cache, cache.policy) is None

    def test_adaptive_policy_falls_back(self):
        cache = self._cache(policy="pama-adaptive")
        reason = derive_unsupported_reason(cache, cache.policy)
        assert reason is not None and "dynamically" in reason
        with pytest.raises(ValueError, match="derive pass unavailable"):
            simulate(_mixed_trace(500), cache, derive=True)

    def test_timeline_forces_scalar_loop(self):
        cache = self._cache()
        with pytest.raises(ValueError, match="timeline"):
            simulate(_mixed_trace(500), cache, derive=True,
                     timeline=TimelineRecorder(stride=100))

    def test_auto_derive_requires_key_hashes(self):
        # Hash-free policies stay scalar on auto: the derive pass only
        # pays for itself when it eliminates per-request hashing.
        exact = self._cache()
        bloom = self._cache(tracker="bloom")
        assert not exact._wants_hashes
        assert bloom._wants_hashes
        # Both supported when forced; equivalence is pinned above.
        assert derive_unsupported_reason(exact, exact.policy) is None
        assert derive_unsupported_reason(bloom, bloom.policy) is None
