"""The key-sharded single-replay engine and the metrics merge.

Pinned contracts:

* ``run_sharded(shards=1)`` is ``==``-exact to ``Simulator.run`` —
  results, window series, and cache-stat counters;
* sharded runs are deterministic for any fixed shard count, and the
  process-pool path produces exactly what the serial in-process path
  produces (shard replays are independent, so scheduling cannot change
  them);
* ``MetricsCollector.merge`` is window-aligned, order-independent, and
  the identity on a single part;
* the guards: tenant policies and below-one-slab capacities are
  rejected.
"""

import math
import random

import numpy as np
import pytest

from repro.bloom.hashing import key_shard
from repro.sim import (ExperimentSpec, MetricsCollector, ServiceTimeModel,
                       Simulator, run_sharded, shard_windows)
from repro.sim.metrics import WindowStats
from repro.traces.record import Trace

MIB = 1 << 20


def _mixed_trace(n=30_000, seed=5):
    rng = random.Random(seed)
    ops, keys, vs, pens = [], [], [], []
    for _ in range(n):
        r = rng.random()
        ops.append(0 if r < 0.8 else (1 if r < 0.95 else 2))
        keys.append(rng.randrange(4000))
        vs.append(rng.choice((40, 200, 900, 3000)))
        pens.append(rng.choice((0.0005, 0.05, 2.0)))
    return Trace(np.array(ops, np.uint8), np.array(keys, np.int64),
                 np.full(n, 16, np.int32), np.array(vs, np.int32),
                 np.array(pens, np.float64))


def _spec(**overrides) -> ExperimentSpec:
    defaults = dict(name="sharded-test", cache_bytes=4 * MIB,
                    window_gets=6000,
                    policy_kwargs={"pama": {"value_window": 6000},
                                   "pre-pama": {"value_window": 6000}})
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def _result_tuple(r):
    return (r.total_gets, r.hit_ratio, r.avg_service_time, r.cache_stats,
            r.final_class_slabs, r.final_queue_slabs,
            [(w.index, w.gets, w.hits, w.penalty_sum, w.service_sum,
              w.class_slabs, w.queue_slabs) for w in r.windows])


class TestShardsOneExact:
    @pytest.mark.parametrize("policy", ["memcached", "pre-pama", "pama"])
    def test_exact_vs_simulator_run(self, policy):
        trace = _mixed_trace()
        spec = _spec()
        cache = spec.build_cache(policy)
        sim = Simulator(cache, ServiceTimeModel(hit_time=spec.hit_time),
                        window_gets=spec.window_gets,
                        fill_on_miss=spec.fill_on_miss)
        direct = sim.run(trace)
        sharded = run_sharded(trace, spec, policy, shards=1)
        assert _result_tuple(direct) == _result_tuple(sharded)


class TestShardedDeterminism:
    def test_fixed_shards_reproducible(self):
        trace = _mixed_trace()
        spec = _spec()
        a = run_sharded(trace, spec, "pama", shards=2, jobs=1)
        b = run_sharded(trace, spec, "pama", shards=2, jobs=1)
        assert _result_tuple(a) == _result_tuple(b)

    def test_pool_matches_serial(self):
        trace = _mixed_trace(12_000)
        spec = _spec()
        serial = run_sharded(trace, spec, "pama", shards=2, jobs=1)
        pooled = run_sharded(trace, spec, "pama", shards=2, jobs=2)
        assert _result_tuple(serial) == _result_tuple(pooled)

    def test_capacity_and_gets_conserved(self):
        trace = _mixed_trace()
        spec = _spec()
        direct = run_sharded(trace, spec, "memcached", shards=1)
        sharded = run_sharded(trace, spec, "memcached", shards=4, jobs=1)
        # every GET lands in exactly one shard
        assert sharded.total_gets == direct.total_gets
        gets = sharded.cache_stats["gets"]
        assert gets == direct.cache_stats["gets"]


class TestShardWindows:
    def test_partition_is_exact_and_disjoint(self):
        trace = _mixed_trace(5000)
        nshards = 3
        parts = [list(shard_windows(trace, s, nshards))[0]
                 for s in range(nshards)]
        assert sum(len(p) for p in parts) == len(trace)
        for s, part in enumerate(parts):
            assert all(key_shard(k, nshards) == s
                       for k in part.keys.tolist())

    def test_single_shard_passthrough(self):
        trace = _mixed_trace(100)
        (window,) = shard_windows(trace, 0, 1)
        assert window is trace


class TestGuards:
    def test_nonpositive_shards_rejected(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            run_sharded(_mixed_trace(100), _spec(), "pama", shards=0)

    def test_capacity_guard(self):
        spec = _spec(cache_bytes=512 * 1024)
        with pytest.raises(ValueError, match="below one"):
            run_sharded(_mixed_trace(100), spec, "pama", shards=64)


class TestMetricsMerge:
    def _collector(self, outcomes, window_gets=4):
        mc = MetricsCollector(window_gets=window_gets)
        for hit, value in outcomes:
            (mc.record_hit if hit else mc.record_miss)(value)
        mc.flush()
        return mc

    def test_identity_on_single_part(self):
        mc = self._collector([(True, 1e-4), (False, 0.5), (True, 1e-4),
                              (False, 2.0), (True, 1e-4)])
        merged = MetricsCollector.merge([mc])
        assert merged.total_gets == mc.total_gets
        assert merged.total_hits == mc.total_hits
        assert merged.total_penalty == mc.total_penalty
        assert merged.total_service == mc.total_service
        assert merged.windows == mc.windows

    def test_order_independent(self):
        rng = random.Random(3)
        parts = [self._collector(
            [(rng.random() < 0.7, rng.choice((1e-4, 0.05, 2.0)))
             for _ in range(rng.randrange(5, 40))]) for _ in range(4)]
        forward = MetricsCollector.merge(parts)
        backward = MetricsCollector.merge(list(reversed(parts)))
        assert forward.windows == backward.windows
        assert forward.total_service == backward.total_service
        assert forward.total_penalty == backward.total_penalty

    def test_window_aligned_with_ragged_tails(self):
        a = self._collector([(True, 1.0)] * 10, window_gets=4)  # 3 windows
        b = self._collector([(False, 2.0)] * 5, window_gets=4)  # 2 windows
        merged = MetricsCollector.merge([a, b])
        assert [w.gets for w in merged.windows] == [8, 5, 2]
        assert merged.windows[0].hits == 4
        assert merged.windows[2] == WindowStats(
            index=2, gets=2, hits=2, penalty_sum=0.0, service_sum=2.0)

    def test_float_sums_use_fsum(self):
        # per-part totals chosen so naive left-to-right addition across
        # parts would lose the middle value (1e16 + 1.0 == 1e16)
        parts = [self._collector([(False, v)], window_gets=10)
                 for v in (1e16, 1.0, -1e16)]
        merged = MetricsCollector.merge(parts)
        assert merged.total_penalty == 1.0
        assert merged.windows[0].penalty_sum == 1.0
        assert math.fsum([1e16, 1.0, -1e16]) == 1.0  # the mechanism

    def test_rejects_unflushed(self):
        mc = MetricsCollector(window_gets=100)
        mc.record_hit(1e-4)
        with pytest.raises(ValueError, match="flushed"):
            MetricsCollector.merge([mc])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            MetricsCollector.merge([])


class TestTenantRejection:
    def test_arbiter_policy_rejected_when_sharded(self, monkeypatch):
        from repro.tenancy import TenantArbiter

        # run_sharded instantiates policies by registry name; the
        # arbiter is constructed directly in real use, so route the
        # probe to one to pin the engine's rejection path.
        arbiter = TenantArbiter(2)
        assert getattr(arbiter, "wants_tenants", False)
        import repro.sim.sharded as sharded_mod
        monkeypatch.setattr(sharded_mod, "make_policy",
                            lambda name, **kw: arbiter)
        with pytest.raises(ValueError, match="tenant"):
            run_sharded(_mixed_trace(100), _spec(), "pama", shards=2,
                        jobs=1)
