"""Tests for the windowed metrics collector."""

import pytest

from repro.sim.metrics import MetricsCollector


class TestMetricsCollector:
    def test_window_closure(self):
        m = MetricsCollector(window_gets=3)
        m.record_hit(0.001)
        m.record_miss(0.5)
        assert len(m.windows) == 0
        m.record_hit(0.001)
        assert len(m.windows) == 1
        w = m.windows[0]
        assert w.gets == 3 and w.hits == 2 and w.misses == 1
        assert w.hit_ratio == pytest.approx(2 / 3)
        assert w.avg_service_time == pytest.approx((0.002 + 0.5) / 3)

    def test_flush_partial_window(self):
        m = MetricsCollector(window_gets=10)
        m.record_hit(0.001)
        m.flush()
        assert len(m.windows) == 1
        assert m.windows[0].gets == 1
        m.flush()  # idempotent on empty
        assert len(m.windows) == 1

    def test_totals_span_windows(self):
        m = MetricsCollector(window_gets=2)
        for _ in range(5):
            m.record_miss(0.1)
        assert m.total_gets == 5
        assert m.overall_hit_ratio == 0.0
        assert m.overall_avg_service_time == pytest.approx(0.1)

    def test_snapshot_fn_called_at_close(self):
        calls = []

        def snap():
            calls.append(1)
            return {0: 2}, {(0, 0): 2}

        m = MetricsCollector(window_gets=1, snapshot_fn=snap)
        m.record_hit(0.0)
        assert calls == [1]
        assert m.windows[0].class_slabs == {0: 2}
        assert m.windows[0].queue_slabs == {(0, 0): 2}

    def test_series_accessors(self):
        m = MetricsCollector(window_gets=1)
        m.record_hit(0.001)
        m.record_miss(0.2)
        assert m.hit_ratio_series() == [1.0, 0.0]
        assert m.service_time_series() == pytest.approx([0.001, 0.2])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MetricsCollector(window_gets=0)
