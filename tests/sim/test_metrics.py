"""Tests for the windowed metrics collector."""

import pytest

from repro.sim.metrics import MetricsCollector


class TestMetricsCollector:
    def test_window_closure(self):
        m = MetricsCollector(window_gets=3)
        m.record_hit(0.001)
        m.record_miss(0.5)
        assert len(m.windows) == 0
        m.record_hit(0.001)
        assert len(m.windows) == 1
        w = m.windows[0]
        assert w.gets == 3 and w.hits == 2 and w.misses == 1
        assert w.hit_ratio == pytest.approx(2 / 3)
        assert w.avg_service_time == pytest.approx((0.002 + 0.5) / 3)

    def test_flush_partial_window(self):
        m = MetricsCollector(window_gets=10)
        m.record_hit(0.001)
        m.flush()
        assert len(m.windows) == 1
        assert m.windows[0].gets == 1
        m.flush()  # idempotent on empty
        assert len(m.windows) == 1

    def test_totals_span_windows(self):
        m = MetricsCollector(window_gets=2)
        for _ in range(5):
            m.record_miss(0.1)
        assert m.total_gets == 5
        assert m.overall_hit_ratio == 0.0
        assert m.overall_avg_service_time == pytest.approx(0.1)

    def test_snapshot_fn_called_at_close(self):
        calls = []

        def snap():
            calls.append(1)
            return {0: 2}, {(0, 0): 2}

        m = MetricsCollector(window_gets=1, snapshot_fn=snap)
        m.record_hit(0.0)
        assert calls == [1]
        assert m.windows[0].class_slabs == {0: 2}
        assert m.windows[0].queue_slabs == {(0, 0): 2}

    def test_series_accessors(self):
        m = MetricsCollector(window_gets=1)
        m.record_hit(0.001)
        m.record_miss(0.2)
        assert m.hit_ratio_series() == [1.0, 0.0]
        assert m.service_time_series() == pytest.approx([0.001, 0.2])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MetricsCollector(window_gets=0)


class TestFlushPartialWindow:
    """flush() closes a trailing partial window exactly once."""

    def test_partial_window_keeps_sums_and_index(self):
        m = MetricsCollector(window_gets=3)
        for _ in range(4):
            m.record_hit(0.001)
        m.record_miss(0.5)  # window 0 closed at 3 gets; 2 pending
        m.flush()
        assert [w.gets for w in m.windows] == [3, 2]
        assert [w.index for w in m.windows] == [0, 1]
        assert m.windows[1].hits == 1 and m.windows[1].misses == 1
        assert m.windows[1].penalty_sum == pytest.approx(0.5)
        assert m.windows[1].service_sum == pytest.approx(0.501)

    def test_flush_on_exact_boundary_adds_nothing(self):
        m = MetricsCollector(window_gets=2)
        m.record_hit(0.001)
        m.record_hit(0.001)
        assert len(m.windows) == 1
        m.flush()
        assert len(m.windows) == 1  # no empty trailing window

    def test_flush_takes_a_snapshot(self):
        snaps = []

        def snap():
            snaps.append(1)
            return {0: 1}, {(0, 0): 1}

        m = MetricsCollector(window_gets=10, snapshot_fn=snap)
        m.record_miss(0.2)
        m.flush()
        assert snaps == [1]
        assert m.windows[0].class_slabs == {0: 1}

    def test_totals_unchanged_by_flush(self):
        m = MetricsCollector(window_gets=10)
        m.record_hit(0.001)
        m.record_miss(0.3)
        before = (m.total_gets, m.total_hits, m.total_service)
        m.flush()
        assert (m.total_gets, m.total_hits, m.total_service) == before
        assert m.overall_hit_ratio == 0.5

    def test_partial_window_ratios(self):
        m = MetricsCollector(window_gets=100)
        m.record_hit(0.001)
        m.record_hit(0.001)
        m.record_miss(0.4)
        m.flush()
        w = m.windows[0]
        assert w.hit_ratio == pytest.approx(2 / 3)
        assert w.avg_service_time == pytest.approx(0.402 / 3)
