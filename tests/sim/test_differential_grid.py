"""Differential test: run_grid(jobs=2) is *exactly* run_grid(jobs=1).

test_parallel.py checks the engine's behaviours piecemeal; this file
pins the whole observable surface of a mixed (successes + failures)
grid — every per-cell metric down to per-window sums, cell ordering,
and the failure records — so any divergence between the serial and
pooled paths fails loudly, field by field.
"""

import pytest

from repro._util import MIB
from repro.sim import ExperimentSpec
from repro.sim.parallel import run_grid, size_specs
from repro.traces import ETC, generate

POLICIES = ["memcached", "pre-pama", "pama"]


@pytest.fixture(scope="module")
def trace():
    return generate(ETC.scaled(0.02), 15_000, seed=47)


@pytest.fixture(scope="module")
def specs():
    base = ExperimentSpec(
        name="diff", cache_bytes=2 * MIB, slab_size=64 * 1024,
        window_gets=5_000,
        policy_kwargs={"pama": {"value_window": 5_000},
                       "pre-pama": {"value_window": 5_000}})
    return size_specs(base, [1 * MIB, 2 * MIB])


def full_state(result):
    """Every deterministic field of a SimulationResult."""
    return {
        "policy": result.policy,
        "hit_ratio": result.hit_ratio,
        "avg_service_time": result.avg_service_time,
        "total_gets": result.total_gets,
        "cache_stats": dict(result.cache_stats),
        "final_class_slabs": dict(result.final_class_slabs),
        "final_queue_slabs": dict(result.final_queue_slabs),
        "windows": [(w.index, w.gets, w.hits, w.penalty_sum, w.service_sum,
                     dict(w.class_slabs)) for w in result.windows],
        "service_quantiles": dict(result.service_quantiles),
    }


class TestJobs2EqualsJobs1:
    def test_per_cell_metrics_identical(self, trace, specs):
        serial = run_grid(trace, specs, POLICIES, jobs=1)
        pooled = run_grid(trace, specs, POLICIES, jobs=2)
        assert serial.ok and pooled.ok
        for key in serial.results:
            assert (full_state(serial.results[key])
                    == full_state(pooled.results[key])), key

    def test_cell_ordering_identical(self, trace, specs):
        serial = run_grid(trace, specs, POLICIES, jobs=1)
        pooled = run_grid(trace, specs, POLICIES, jobs=2)
        assert list(serial.results) == list(pooled.results)
        assert list(serial.results) == [(s.name, p) for s in specs
                                        for p in POLICIES]

    def test_failure_parity(self, trace, specs):
        mixed = POLICIES + ["no-such-policy"]
        serial = run_grid(trace, specs, mixed, jobs=1)
        pooled = run_grid(trace, specs, mixed, jobs=2)
        assert not serial.ok and not pooled.ok
        assert list(serial.failures) == list(pooled.failures)
        for key in serial.failures:
            s, p = serial.failures[key], pooled.failures[key]
            # tracebacks may differ (worker vs caller frames); the
            # identifying triple must not.
            assert (s.spec_name, s.policy, s.error) \
                == (p.spec_name, p.policy, p.error), key
        for key in serial.results:
            assert (full_state(serial.results[key])
                    == full_state(pooled.results[key])), key

    def test_repeated_pooled_runs_identical(self, trace, specs):
        a = run_grid(trace, specs, POLICIES, jobs=2)
        b = run_grid(trace, specs, POLICIES, jobs=2)
        for key in a.results:
            assert full_state(a.results[key]) == full_state(b.results[key])
