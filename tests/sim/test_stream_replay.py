"""Streamed-window replay must equal whole-trace replay, exactly.

``Simulator.run`` accepts a :class:`CompiledTrace` and consumes it one
mmap window at a time.  The window boundary must be invisible: every
counter, every float, every windowed series — identical to replaying
the same rows as one in-memory :class:`Trace`.  The per-window
``ServiceTimeModel.miss_array`` is element-wise, so there is no
numerical excuse for divergence; we assert ``==``, not approx.
"""

import numpy as np
import pytest

from repro._util import MIB
from repro.cache import SizeClassConfig, SlabCache
from repro.policies import make_policy
from repro.sim.simulator import simulate
from repro.traces import ETC, compile_trace, generate, inject_burst

POLICIES = ["memcached", "pre-pama", "pama"]
KWARGS = {"pama": {"value_window": 5_000},
          "pre-pama": {"value_window": 5_000}}


@pytest.fixture(scope="module")
def trace():
    base = generate(ETC.scaled(0.02), 12_000, seed=23)
    return inject_burst(base, at_get=4_000, total_bytes=512 * 1024,
                        size_lo=100, size_hi=4_000, seed=5)


@pytest.fixture(scope="module")
def compiled(trace, tmp_path_factory):
    out = tmp_path_factory.mktemp("stream") / "stream.ctrc"
    return compile_trace(trace, out)


def run(source, policy):
    cache = SlabCache(2 * MIB, make_policy(policy, **KWARGS.get(policy, {})),
                      SizeClassConfig(slab_size=64 << 10))
    return simulate(source, cache, window_gets=5_000)


def fingerprint(r):
    return (r.total_gets, r.hit_ratio, r.avg_service_time,
            tuple(r.hit_ratio_series()), tuple(r.service_time_series()),
            r.cache_stats["evictions"], r.cache_stats["migrations"],
            tuple(sorted(r.final_class_slabs.items())))


class TestStreamedEqualsWholeTrace:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_default_window(self, trace, compiled, policy):
        assert fingerprint(run(compiled, policy)) \
            == fingerprint(run(trace, policy))

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("window", [997, 4_096])
    def test_awkward_windows(self, trace, compiled, policy, window):
        # 997 never aligns with the metrics window (5000) or the trace
        # length; 4096 splits the burst region mid-flight.
        from repro.traces import CompiledTrace
        streamed = run(CompiledTrace(compiled.path, window=window), policy)
        assert fingerprint(streamed) == fingerprint(run(trace, policy))

    def test_window_of_one(self, trace, tmp_path):
        # Degenerate single-row windows: maximal boundary crossings.
        small = compile_trace(trace.slice(0, 800), tmp_path / "tiny.ctrc")
        small.window = 1
        assert fingerprint(run(small, "pama")) \
            == fingerprint(run(trace.slice(0, 800), "pama"))

    def test_plain_iterable_of_windows(self, trace):
        # Any iterable of Trace chunks is a valid streaming source.
        chunks = [trace.slice(i, i + 1_500)
                  for i in range(0, len(trace), 1_500)]
        assert fingerprint(run(iter(chunks), "memcached")) \
            == fingerprint(run(trace, "memcached"))

    def test_release_flag_does_not_change_results(self, trace, compiled,
                                                  tmp_path):
        kept = compile_trace(trace, tmp_path / "keep.ctrc")
        kept.release = False
        assert fingerprint(run(kept, "memcached")) \
            == fingerprint(run(compiled, "memcached"))

    def test_windows_share_no_state(self, compiled):
        # Consuming windows twice replays identically (the iterator is
        # re-creatable, not a one-shot generator on the object).
        a = run(compiled, "memcached")
        b = run(compiled, "memcached")
        assert fingerprint(a) == fingerprint(b)

    def test_streamed_timestamps_survive(self, trace, compiled):
        # Sanity: the compiled source really carries timestamps through.
        assert np.allclose(compiled.timestamps, trace.timestamps)
