"""Measure trace compile + streamed replay speed; track the trajectory.

``benchmarks/results/BENCH_trace_compile.json`` is an append-only
history of what the columnar trace compiler achieves on this host:

* ``compile_ops_per_sec`` — synthetic generation + columnar write
  (:func:`repro.traces.compile.compile_synthetic`, chunked, so the
  compile itself runs in bounded memory);
* ``replay_ops_per_sec`` — a memcached-policy ``simulate()`` over the
  compiled trace through the streaming window iterator (mmap windows,
  consumed pages madvised away);
* ``wall_clock_per_100m_ops_s`` — the headline the compiler exists
  for: extrapolated end-to-end seconds to compile *and* replay a
  100M-operation trace (``1e8 / compile_rate + 1e8 / replay_rate``);
* ``peak_rss_bytes`` — the process high-water mark after the run.  On
  a bounded-memory code path this stays flat as ``--ops`` grows; it is
  recorded for the trajectory, not gated (absolute RSS is host noise).

Each run appends one entry; ``--check`` compares the gated rates
against the most recent committed entry with the same op count and
fails (exit 1) on a >25% regression — the CI smoke gate for the
compile/streamed-replay path.

Usage (from the repo root, PYTHONPATH=src)::

    python benchmarks/record_trace_compile.py                 # full, append
    python benchmarks/record_trace_compile.py --quick --check # the CI gate
    python benchmarks/record_trace_compile.py --dry-run       # measure only
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path

from repro._util import MIB
from repro.cache import SizeClassConfig, SlabCache
from repro.policies import make_policy
from repro.sim.simulator import simulate
from repro.traces import ETC, CompiledTrace, compile_synthetic

SCHEMA = "repro-kv/bench-trace-compile/v1"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_trace_compile.json"
#: a gated rate may lose at most this fraction vs the reference entry.
REGRESSION_TOLERANCE = 0.25
#: the rates the --check gate compares by default.
GATES = ("compile_ops_per_sec", "replay_ops_per_sec")
PROFILE = ETC.scaled(0.1)
REPLAY_WINDOW = 1 << 17


def _replay_cache() -> SlabCache:
    return SlabCache(8 * MIB, make_policy("memcached"),
                     SizeClassConfig(slab_size=64 << 10))


def measure(n_ops: int, rounds: int) -> dict[str, float]:
    """Best-of-``rounds`` rates for compile and streamed replay."""
    best_compile = float("inf")
    best_replay = float("inf")
    with tempfile.TemporaryDirectory(prefix="bench-ctrc-") as tmp:
        for rnd in range(rounds):
            out = Path(tmp) / f"bench-{rnd}.ctrc"
            started = time.perf_counter()
            compile_synthetic(PROFILE, n_ops, out, seed=7, chunk=1 << 20)
            best_compile = min(best_compile, time.perf_counter() - started)

            trace = CompiledTrace(out, window=REPLAY_WINDOW)
            started = time.perf_counter()
            simulate(trace, _replay_cache(), window_gets=max(n_ops, 1))
            best_replay = min(best_replay, time.perf_counter() - started)

    compile_rate = n_ops / best_compile
    replay_rate = n_ops / best_replay
    metrics = {
        "compile_ops_per_sec": round(compile_rate, 1),
        "replay_ops_per_sec": round(replay_rate, 1),
        "wall_clock_per_100m_ops_s": round(
            1e8 / compile_rate + 1e8 / replay_rate, 1),
        "peak_rss_bytes": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss * 1024,
    }
    print(f"  compile {metrics['compile_ops_per_sec']:>12,.0f} ops/s")
    print(f"  replay  {metrics['replay_ops_per_sec']:>12,.0f} ops/s")
    print(f"  100M-op wall clock (extrapolated) "
          f"{metrics['wall_clock_per_100m_ops_s']:,.0f} s")
    print(f"  peak RSS {metrics['peak_rss_bytes'] / MIB:,.0f} MiB")
    return metrics


def load(path: Path) -> dict:
    if path.exists():
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("schema") != SCHEMA:
            sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
        return doc
    return {"schema": SCHEMA,
            "workload": {"driver":
                         "benchmarks/record_trace_compile.py::measure",
                         "profile": "etc x0.1", "seed": 7,
                         "replay": "memcached, 8 MiB cache, "
                                   f"window {REPLAY_WINDOW}"},
            "entries": []}


def reference_entry(entries: list[dict], n_ops: int) -> dict | None:
    """Most recent committed entry measured at the same op count."""
    for entry in reversed(entries):
        if entry.get("n_ops") == n_ops:
            return entry
    return entries[-1] if entries else None


def check(measured: dict[str, float], reference: dict | None,
          gates: list[str]) -> list[str]:
    failures = []
    if reference is None:
        print("no reference entry to check against; skipping gate")
        return failures
    ref_metrics = reference.get("metrics", {})
    for gate in gates:
        ref = ref_metrics.get(gate)
        got = measured.get(gate)
        if ref is None or got is None:
            continue
        floor = ref * (1.0 - REGRESSION_TOLERANCE)
        verdict = "ok" if got >= floor else "REGRESSION"
        print(f"gate {gate}: {got:,.0f} ops/s vs reference {ref:,.0f} "
              f"({reference.get('label')}, floor {floor:,.0f}) -> {verdict}")
        if got < floor:
            failures.append(gate)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=1_000_000,
                        help="operations per round (default 1000000)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="rounds; best compile/replay time is kept")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 50000 ops, 2 rounds")
    parser.add_argument("--label", default="",
                        help="entry label (default: quick/full + date)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="trajectory JSON to append to")
    parser.add_argument("--check", action="store_true",
                        help="fail on >25%% regression of the gated rates "
                             "against the committed reference entry")
    parser.add_argument("--gate", default=",".join(GATES),
                        help="comma-separated metric names the --check gates")
    parser.add_argument("--dry-run", action="store_true",
                        help="measure and print, do not touch the file")
    args = parser.parse_args(argv)

    n_ops = 50_000 if args.quick else args.ops
    rounds = 2 if args.quick else args.rounds
    mode = "quick" if args.quick else "full"
    print(f"compiling + replaying {n_ops:,} ops x {rounds} rounds "
          f"({mode} mode)")
    measured = measure(n_ops, rounds)

    doc = load(args.out)
    failures = []
    if args.check:
        failures = check(measured, reference_entry(doc["entries"], n_ops),
                         [g for g in args.gate.split(",") if g])

    if not args.dry_run:
        doc["entries"].append({
            "label": args.label or
            f"{mode} {datetime.date.today().isoformat()}",
            "date": datetime.date.today().isoformat(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "n_ops": n_ops,
            "rounds": rounds,
            "metrics": measured,
        })
        args.out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"appended entry #{len(doc['entries'])} to {args.out}")

    if failures:
        print(f"trace-compile gate FAILED for: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
