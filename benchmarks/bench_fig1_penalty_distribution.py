"""Fig 1 — miss penalties of GET requests for KV items of different sizes.

The paper's figure is a scatter of (item size, miss penalty) for the
APP workload: penalties span roughly milliseconds to 5 seconds at every
size, with only a weak size trend.  The bench regenerates the
underlying distribution from the synthetic APP trace (whose penalty
model implements the paper's GET-miss→SET-gap methodology, capped at
5 s with a 100 ms default) and emits the per-size-decade spread.
"""

import numpy as np

from benchmarks.conftest import write_csv
from repro.sim.report import format_table
from repro.traces import analyze


def bench_fig1(benchmark, app_trace, capsys):
    stats = benchmark.pedantic(lambda: analyze(app_trace),
                               rounds=1, iterations=1)

    rows = [[f"{b.size_lo}-{b.size_hi}", b.count, b.penalty_min,
             b.penalty_p50, b.penalty_p90, b.penalty_max]
            for b in stats.penalty_by_size]
    table = format_table(
        ["size_bytes", "count", "pen_min_s", "pen_p50_s", "pen_p90_s",
         "pen_max_s"], rows)
    csv = "size_lo,size_hi,count,pen_min,pen_p50,pen_p90,pen_max\n" + "".join(
        f"{b.size_lo},{b.size_hi},{b.count},{b.penalty_min:.6g},"
        f"{b.penalty_p50:.6g},{b.penalty_p90:.6g},{b.penalty_max:.6g}\n"
        for b in stats.penalty_by_size)
    path = write_csv("fig1_penalty_by_size.csv", csv)
    with capsys.disabled():
        print(f"\n[fig1] penalty by item-size decade (APP) -> {path}")
        print(table)

    # Paper claims: penalties range from a few ms to seconds...
    assert stats.penalty_max > 1.0
    assert stats.penalty_p50 < 0.2
    # ...and the spread exists at every size decade (the scatter shape)
    populous = [b for b in stats.penalty_by_size if b.count > 500]
    assert len(populous) >= 3
    for bucket in populous:
        assert bucket.penalty_max / max(bucket.penalty_min, 1e-9) > 50, (
            f"no penalty spread in bucket {bucket.size_lo}-{bucket.size_hi}")
    # weak positive size trend: the largest decade's median exceeds the
    # smallest's
    assert populous[-1].penalty_p50 > populous[0].penalty_p50
    # the 5s cap and the 100ms default are both visible
    assert stats.penalty_max <= 5.0
    pens = app_trace.penalties
    assert np.count_nonzero(pens == 0.1) / len(pens) > 0.02
