"""Ablation A — exact boundary-pointer tracking vs the paper's Bloom filters.

The paper implements segment membership with per-segment Bloom filters
plus a removal filter (§III, third challenge); our simulator defaults
to an exact O(1) tracker.  This ablation quantifies what the
approximation costs: end-metric agreement (hit ratio / service time)
and the bookkeeping overhead of each variant.
"""

from dataclasses import replace

from benchmarks.conftest import BENCH_JOBS, base_spec, write_csv
from repro._util import MIB
from repro.sim import run_comparison
from repro.sim.report import format_table

CACHE = 32 * MIB


def _run(trace, tracker):
    spec = base_spec(f"ablation-{tracker}", CACHE)
    spec = replace(spec, policy_kwargs={
        "pama": {"tracker": tracker, "value_window": 50_000}})
    return run_comparison(trace, spec, ["pama"],
                          jobs=BENCH_JOBS).results["pama"]


def bench_ablation_bloom_tracker(benchmark, etc_trace, capsys):
    exact = _run(etc_trace, "exact")
    bloom = benchmark.pedantic(lambda: _run(etc_trace, "bloom"),
                               rounds=1, iterations=1)

    rows = [
        ["exact", exact.hit_ratio, exact.avg_service_time * 1e3,
         exact.cache_stats["migrations"], exact.elapsed_seconds],
        ["bloom", bloom.hit_ratio, bloom.avg_service_time * 1e3,
         bloom.cache_stats["migrations"], bloom.elapsed_seconds],
    ]
    table = format_table(
        ["tracker", "hit_ratio", "avg_service_ms", "migrations",
         "wall_s"], rows)
    write_csv("ablation_bloom_tracker.csv",
              "tracker,hit_ratio,avg_service_ms,migrations\n" + "".join(
                  f"{r[0]},{r[1]:.6f},{r[2]:.4f},{r[3]:.0f}\n" for r in rows))
    with capsys.disabled():
        print("\n[ablation A] exact vs bloom segment tracking (ETC, 32MiB)")
        print(table)

    # The approximation must not change the end metrics materially —
    # that is precisely why the paper could afford Bloom filters.
    assert abs(exact.hit_ratio - bloom.hit_ratio) < 0.05
    assert (abs(exact.avg_service_time - bloom.avg_service_time)
            / exact.avg_service_time) < 0.25
    # and PAMA with bloom tracking still beats doing nothing
    static = run_comparison(etc_trace, base_spec("static", CACHE),
                            ["memcached"]).results["memcached"]
    assert bloom.avg_service_time < static.avg_service_time
