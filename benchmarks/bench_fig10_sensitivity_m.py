"""Fig 10 — sensitivity to the number of reference segments (m).

Paper: increasing m from 0 to 2 cuts ETC's service time by ~12-28%;
m=4 and m=8 add only small further gains (APP shows the same at a
smaller scale), so the moderate default m=2 is the right choice.
"""

from dataclasses import replace

from benchmarks.conftest import BENCH_JOBS, base_spec, write_csv
from repro._util import MIB
from repro.sim import run_grid
from repro.sim.report import format_table, series_csv
from repro.traces import APP, ETC, generate

M_VALUES = (0, 2, 4, 8)


def _sweep_m(trace, cache_bytes):
    """The m-axis as one parallel grid: one spec per segment count."""
    specs = [replace(base_spec(f"fig10-m{m}", cache_bytes),
                     policy_kwargs={"pama": {"m": m, "value_window": 50_000}})
             for m in M_VALUES]
    grid = run_grid(trace, specs, ["pama"], jobs=BENCH_JOBS)
    grid.raise_failures()
    return {m: grid.results[(spec.name, "pama")]
            for m, spec in zip(M_VALUES, specs)}


def bench_fig10(benchmark, app_trace, capsys):
    etc_trace = generate(ETC.scaled(0.5), 400_000, seed=2015)

    etc = benchmark.pedantic(lambda: _sweep_m(etc_trace, 16 * MIB),
                             rounds=1, iterations=1)
    app = _sweep_m(app_trace, 32 * MIB)

    rows = []
    for workload, results in (("etc", etc), ("app", app)):
        write_csv(f"fig10_{workload}_service_time.csv", series_csv(
            {f"m={m}": r.service_time_series() for m, r in results.items()}))
        for m, r in results.items():
            rows.append([workload, m, r.avg_service_time * 1e3,
                         r.hit_ratio])
    with capsys.disabled():
        print("\n[fig10] PAMA sensitivity to reference segments m")
        print(format_table(["workload", "m", "avg_service_ms", "hit_ratio"],
                           rows))

    # m=0 -> m=2 is a visible improvement on ETC
    assert etc[2].avg_service_time < etc[0].avg_service_time
    # diminishing returns beyond m=2: m=4/8 sit within a few percent of m=2
    for m in (4, 8):
        assert etc[m].avg_service_time <= etc[2].avg_service_time * 1.06, m
        assert app[m].avg_service_time <= app[2].avg_service_time * 1.06, m
    # APP's sensitivity is visible but smaller than ETC's (paper)
    etc_gain = 1 - etc[2].avg_service_time / etc[0].avg_service_time
    app_gain = 1 - app[2].avg_service_time / app[0].avg_service_time
    assert etc_gain > -0.02 and app_gain > -0.06
