"""Measure server throughput and track it in BENCH_server.json.

The serving trajectory (``benchmarks/results/BENCH_server.json``) is an
append-only history of what the load generator achieves against the two
front ends: the ``legacy`` threaded server and the ``async`` sharded
server.  Each run appends one entry with ops/s and p99 batch RTT per
configuration; ``--check`` compares the gated configuration (``async``)
against the most recent committed entry with the same op count and
fails (exit 1) on a >25% regression.  The floor is normalised for host
speed via the ``legacy`` configuration — same cache engine, same
protocol, none of the async/sharding machinery — so a slow CI runner
rescales the comparison instead of failing it spuriously.  ``--check``
also enforces the headline claim directly: the async server must hold
at least ``--min-speedup`` (default 2.0) times the legacy ops/s
measured in the *same* run.

Usage (from the repo root, PYTHONPATH=src)::

    python benchmarks/record_server.py                 # full, append
    python benchmarks/record_server.py --quick --check # the CI gate
    python benchmarks/record_server.py --dry-run       # measure only
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cache import SizeClassConfig, SlabCache  # noqa: E402
from repro.core import PamaPolicy  # noqa: E402
from repro.server import (LoadgenConfig, ShardSet,  # noqa: E402
                          run_loadgen_sync, start_async_server,
                          start_server)

SCHEMA = "repro-kv/bench-server/v1"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_server.json"
#: the gated config may lose at most this fraction vs the reference.
REGRESSION_TOLERANCE = 0.25
#: config used to normalise for host speed (ungated reference engine).
CALIBRATION_CONFIG = "legacy"

CACHE_BYTES = 32 << 20
SLAB_BYTES = 64 << 10
NSHARDS = 4


def start_legacy():
    cache = SlabCache(CACHE_BYTES, PamaPolicy(),
                      SizeClassConfig(slab_size=SLAB_BYTES))
    server = start_server(cache)

    class Handle:
        port = server.port

        @staticmethod
        def stop():
            server.shutdown()
            server.server_close()

    return Handle


def start_async():
    shards = ShardSet(CACHE_BYTES, PamaPolicy,
                      SizeClassConfig(slab_size=SLAB_BYTES), nshards=NSHARDS)
    return start_async_server(shards)


CONFIGS = {"legacy": start_legacy, "async": start_async}


def measure(cfg: LoadgenConfig, rounds: int, configs) -> dict[str, dict]:
    """Best-of-``rounds`` loadgen results per server configuration."""
    out = {}
    for name in configs:
        best = None
        for _ in range(rounds):
            handle = CONFIGS[name]()
            try:
                result = run_loadgen_sync("127.0.0.1", handle.port, cfg)
            finally:
                handle.stop()
            if result.errors:
                sys.exit(f"{name}: loadgen saw {result.errors} errors")
            if best is None or result.ops_per_sec > best.ops_per_sec:
                best = result
        out[name] = {
            "ops_per_sec": round(best.ops_per_sec, 1),
            "p50_batch_rtt_ms": round(
                best.latency_quantile(0.5) * 1e3, 3),
            "p99_batch_rtt_ms": round(
                best.latency_quantile(0.99) * 1e3, 3),
            "hit_ratio": round(best.hit_ratio, 4),
        }
        print(f"  {name:<8} {best.ops_per_sec:>12,.0f} ops/s   "
              f"p99 {out[name]['p99_batch_rtt_ms']:.1f} ms")
    return out


def load(path: Path) -> dict:
    if path.exists():
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("schema") != SCHEMA:
            sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
        return doc
    return {"schema": SCHEMA,
            "workload": {"driver": "repro.server.loadgen::run_loadgen",
                         "servers": {"legacy": "threaded, 1 cache",
                                     "async": f"asyncio, {NSHARDS} shards"}},
            "entries": []}


def reference_entry(entries: list[dict], n_ops: int) -> dict | None:
    """Most recent committed entry measured at the same op count."""
    for entry in reversed(entries):
        if entry.get("n_ops") == n_ops:
            return entry
    return entries[-1] if entries else None


def check(measured: dict[str, dict], reference: dict | None,
          gates: list[str], min_speedup: float) -> list[str]:
    failures = []
    # within-run speedup gate: the async front end's reason to exist
    legacy = measured.get("legacy", {}).get("ops_per_sec")
    for gate in gates:
        got = measured.get(gate, {}).get("ops_per_sec")
        if gate == "legacy" or got is None or not legacy:
            continue
        speedup = got / legacy
        verdict = "ok" if speedup >= min_speedup else "REGRESSION"
        print(f"speedup {gate}/legacy: x{speedup:.2f} "
              f"(floor x{min_speedup:.2f}) -> {verdict}")
        if speedup < min_speedup:
            failures.append(f"{gate}-speedup")
    if reference is None:
        print("no reference entry to check against; skipping history gate")
        return failures
    ref_rates = reference.get("results", {})
    scale = 1.0
    cal_ref = ref_rates.get(CALIBRATION_CONFIG, {}).get("ops_per_sec")
    cal_got = measured.get(CALIBRATION_CONFIG, {}).get("ops_per_sec")
    if cal_ref and cal_got and CALIBRATION_CONFIG not in gates:
        scale = cal_got / cal_ref
        print(f"host-speed calibration via {CALIBRATION_CONFIG}: "
              f"{cal_got:,.0f} / {cal_ref:,.0f} ops/s -> x{scale:.3f}")
    for gate in gates:
        ref = ref_rates.get(gate, {}).get("ops_per_sec")
        got = measured.get(gate, {}).get("ops_per_sec")
        if ref is None or got is None:
            continue
        floor = ref * scale * (1.0 - REGRESSION_TOLERANCE)
        verdict = "ok" if got >= floor else "REGRESSION"
        print(f"gate {gate}: {got:,.0f} ops/s vs reference {ref:,.0f} "
              f"({reference.get('label')}, floor {floor:,.0f}) -> {verdict}")
        if got < floor:
            failures.append(gate)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=30_000,
                        help="total operations per round (default 30000)")
    parser.add_argument("--connections", type=int, default=64)
    parser.add_argument("--pipeline", type=int, default=8)
    parser.add_argument("--keys", type=int, default=2_000)
    parser.add_argument("--value-size", type=int, default=64)
    parser.add_argument("--get-ratio", type=float, default=0.9)
    parser.add_argument("--rounds", type=int, default=2,
                        help="rounds per config; best is kept")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 6000 ops, 16 conns, 1 round")
    parser.add_argument("--configs", default=",".join(CONFIGS),
                        help="comma-separated configuration labels")
    parser.add_argument("--label", default="",
                        help="entry label (default: quick/full + date)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="trajectory JSON to append to")
    parser.add_argument("--check", action="store_true",
                        help="fail on >25%% regression of the gated config "
                             "or a speedup below --min-speedup")
    parser.add_argument("--gate", default="async",
                        help="comma-separated configs the --check gates")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required async/legacy ops/s ratio (default 2)")
    parser.add_argument("--dry-run", action="store_true",
                        help="measure and print, do not touch the file")
    args = parser.parse_args(argv)

    n_ops = 6_000 if args.quick else args.ops
    connections = 16 if args.quick else args.connections
    rounds = 1 if args.quick else args.rounds
    configs = [c for c in args.configs.split(",") if c]
    for c in configs:
        if c not in CONFIGS:
            sys.exit(f"unknown config {c!r}; choose from {list(CONFIGS)}")
    cfg = LoadgenConfig(connections=connections, pipeline=args.pipeline,
                        ops=n_ops, get_ratio=args.get_ratio, keys=args.keys,
                        value_size=args.value_size, seed=7)

    mode = "quick" if args.quick else "full"
    print(f"loadgen: {n_ops} ops, {connections} conns, "
          f"pipeline {cfg.pipeline}, {rounds} round(s) ({mode} mode)")
    measured = measure(cfg, rounds, configs)

    doc = load(args.out)
    failures = []
    if args.check:
        failures = check(measured, reference_entry(doc["entries"], n_ops),
                         [g for g in args.gate.split(",") if g],
                         args.min_speedup)

    if not args.dry_run:
        doc["entries"].append({
            "label": args.label or
            f"{mode} {datetime.date.today().isoformat()}",
            "date": datetime.date.today().isoformat(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "n_ops": n_ops,
            "connections": connections,
            "pipeline": cfg.pipeline,
            "rounds": rounds,
            "results": measured,
        })
        args.out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"appended entry #{len(doc['entries'])} to {args.out}")

    if failures:
        print(f"server bench gate FAILED for: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
