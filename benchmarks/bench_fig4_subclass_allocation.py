"""Fig 4 — slab allocation across subclasses inside single classes (PAMA).

The paper shows two example classes: small-item classes keep mostly
low-penalty subclasses and tend to lose space, while larger classes'
high-penalty subclasses gain it.  We regenerate the per-subclass slab
series for the two most populated classes of the PAMA run and check
that high-penalty subclasses end up holding a substantial share of
their class's slabs — the signature of penalty-aware allocation.
"""

from collections import defaultdict

from benchmarks.conftest import ETC_CACHE_SIZES, run_single, write_csv
from repro.sim.report import series_csv

MID = ETC_CACHE_SIZES[1]


def bench_fig4(benchmark, etc_trace, etc_sweep, capsys):
    benchmark.pedantic(lambda: run_single(etc_trace, "pama", MID),
                       rounds=1, iterations=1)

    result = etc_sweep[MID].results["pama"]

    # rank classes by final slab count, inspect the top two (the paper
    # uses classes 0 and 8)
    totals: dict[int, int] = defaultdict(int)
    for (cls, _bin), n in result.final_queue_slabs.items():
        totals[cls] += n
    top_classes = sorted(totals, key=totals.get, reverse=True)[:2]

    lines = []
    for cls in top_classes:
        series = {f"subclass{b}": result.queue_slab_series(cls, b)
                  for b in range(5)}
        path = write_csv(f"fig4_class{cls}_subclass_slabs.csv",
                         series_csv(series))
        finals = {b: result.final_queue_slabs.get((cls, b), 0)
                  for b in range(5)}
        lines.append(f"  class {cls}: final per-subclass slabs {finals} "
                     f"-> {path}")
    with capsys.disabled():
        print("\n[fig4] per-subclass allocation inside PAMA classes "
              "(ETC, 32MiB)")
        print("\n".join(lines))

    # Subclasses beyond bin 0 must exist and hold space: allocation is
    # genuinely penalty-stratified, not a single-LRU in disguise.
    bins_in_use = {b for (_c, b), n in result.final_queue_slabs.items() if n}
    assert len(bins_in_use) >= 3, f"only bins {bins_in_use} hold slabs"

    # In the inspected classes, the high-penalty half (bins 2-4) retains
    # a meaningful share — the paper's "classes for relatively large
    # items ... may gain cache space" via expensive subclasses.
    for cls in top_classes:
        high = sum(result.final_queue_slabs.get((cls, b), 0)
                   for b in (2, 3, 4))
        total = totals[cls]
        assert total > 0
        assert high / total > 0.2, (
            f"class {cls}: high-penalty subclasses hold only {high}/{total}")
