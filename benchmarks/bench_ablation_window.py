"""Ablation B — value-window rollover policy and window length.

The paper defines slab values over a time window of cache accesses but
not the boundary rule; DESIGN.md documents our two implementations
(``reset`` = the literal reading, ``decay`` = smoothed, the default).
This ablation sweeps both modes and several window lengths to show the
choice is safe: all variants land in a narrow service-time band, with
decay at or near the best.
"""

from dataclasses import replace

from benchmarks.conftest import BENCH_JOBS, base_spec, write_csv
from repro._util import MIB
from repro.sim import run_grid
from repro.sim.report import format_table

CACHE = 16 * MIB
WINDOWS = (10_000, 50_000, 200_000)
VARIANTS = [(mode, window) for mode in ("decay", "reset")
            for window in WINDOWS]


def _specs():
    return [replace(base_spec(f"win-{mode}-{window}", CACHE),
                    policy_kwargs={"pama": {"window_mode": mode,
                                            "value_window": window}})
            for mode, window in VARIANTS]


def bench_ablation_window(benchmark, etc_trace, capsys):
    results = {}

    def sweep():
        specs = _specs()
        grid = run_grid(etc_trace, specs, ["pama"], jobs=BENCH_JOBS)
        grid.raise_failures()
        results.update({variant: grid.results[(spec.name, "pama")]
                        for variant, spec in zip(VARIANTS, specs)})
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[mode, window, r.avg_service_time * 1e3, r.hit_ratio,
             r.cache_stats["migrations"]]
            for (mode, window), r in results.items()]
    write_csv("ablation_window.csv",
              "mode,window,avg_service_ms,hit_ratio,migrations\n" + "".join(
                  f"{m},{w},{r.avg_service_time*1e3:.4f},{r.hit_ratio:.6f},"
                  f"{r.cache_stats['migrations']:.0f}\n"
                  for (m, w), r in results.items()))
    with capsys.disabled():
        print("\n[ablation B] value-window mode x length (ETC, 16MiB)")
        print(format_table(
            ["mode", "window", "avg_service_ms", "hit_ratio", "migrations"],
            rows))

    times = {k: r.avg_service_time for k, r in results.items()}
    best, worst = min(times.values()), max(times.values())
    # the interpretation choice is not load-bearing: <35% spread
    assert worst / best < 1.35, times
    # the default (decay @ 50k) is within 12% of the best variant
    assert times[("decay", 50_000)] <= best * 1.12
