"""Measure cache-op throughput and track it in BENCH_throughput.json.

The throughput trajectory (``benchmarks/results/BENCH_throughput.json``)
is an append-only history of what ``bench_throughput.drive`` achieves on
each tracked configuration.  Each run appends one entry; ``--check``
additionally compares the gated configurations against the most recent
committed entry with the same op count and fails (exit 1) on a >25%
regression — the CI smoke gate for the hash-once hot path.  The floor
is normalised for host speed via the ``memcached`` configuration (same
engine, none of the gated machinery), so a slow CI runner rescales the
comparison instead of failing it spuriously.

Usage (from the repo root, PYTHONPATH=src)::

    python benchmarks/record_throughput.py                 # full, append
    python benchmarks/record_throughput.py --quick --check # the CI gate
    python benchmarks/record_throughput.py --dry-run       # measure only
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from pathlib import Path

from bench_throughput import CONFIGS, drive

SCHEMA = "repro-kv/bench-throughput/v1"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_throughput.json"
#: a gated config may lose at most this fraction vs the reference entry.
REGRESSION_TOLERANCE = 0.25
#: config used to normalise for host speed: it runs the same engine but
#: none of the pama/bloom machinery, so a slower CI box rescales the
#: floor while a hash-once regression (which hits only the gated
#: configs) still trips it.
CALIBRATION_CONFIG = "memcached"


def measure(n_ops: int, rounds: int, configs) -> dict[str, float]:
    """Best-of-``rounds`` ops/sec per configuration."""
    out = {}
    for name in configs:
        best = float("inf")
        for _ in range(rounds):
            cache = CONFIGS[name]()
            started = time.perf_counter()
            drive(cache, n=n_ops)
            best = min(best, time.perf_counter() - started)
        out[name] = round(n_ops / best, 1)
        print(f"  {name:<12} {out[name]:>12,.0f} ops/s")
    return out


def load(path: Path) -> dict:
    if path.exists():
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("schema") != SCHEMA:
            sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
        return doc
    return {"schema": SCHEMA,
            "workload": {"driver": "benchmarks/bench_throughput.py::drive",
                         "key_space": 20_000, "seed": 7},
            "entries": []}


def reference_entry(entries: list[dict], n_ops: int) -> dict | None:
    """Most recent committed entry measured at the same op count."""
    for entry in reversed(entries):
        if entry.get("n_ops") == n_ops:
            return entry
    return entries[-1] if entries else None


def check(measured: dict[str, float], reference: dict | None,
          gates: list[str]) -> list[str]:
    failures = []
    if reference is None:
        print("no reference entry to check against; skipping gate")
        return failures
    ref_rates = reference.get("ops_per_sec", {})
    scale = 1.0
    cal_ref = ref_rates.get(CALIBRATION_CONFIG)
    cal_got = measured.get(CALIBRATION_CONFIG)
    if cal_ref and cal_got and CALIBRATION_CONFIG not in gates:
        scale = cal_got / cal_ref
        print(f"host-speed calibration via {CALIBRATION_CONFIG}: "
              f"{cal_got:,.0f} / {cal_ref:,.0f} ops/s -> x{scale:.3f}")
    for gate in gates:
        ref = ref_rates.get(gate)
        got = measured.get(gate)
        if ref is None or got is None:
            continue
        floor = ref * scale * (1.0 - REGRESSION_TOLERANCE)
        verdict = "ok" if got >= floor else "REGRESSION"
        print(f"gate {gate}: {got:,.0f} ops/s vs reference {ref:,.0f} "
              f"({reference.get('label')}, floor {floor:,.0f}) -> {verdict}")
        if got < floor:
            failures.append(gate)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=30_000,
                        help="operations per round (default 30000)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="rounds per config; best is kept")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 10000 ops, 2 rounds")
    parser.add_argument("--configs",
                        default=",".join(CONFIGS),
                        help="comma-separated configuration labels")
    parser.add_argument("--label", default="",
                        help="entry label (default: quick/full + date)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="trajectory JSON to append to")
    parser.add_argument("--check", action="store_true",
                        help="fail on >25%% regression of gated configs "
                             "against the committed reference entry")
    parser.add_argument("--gate", default="pama,pama+bloom",
                        help="comma-separated configs the --check gates")
    parser.add_argument("--dry-run", action="store_true",
                        help="measure and print, do not touch the file")
    args = parser.parse_args(argv)

    n_ops = 10_000 if args.quick else args.ops
    rounds = 2 if args.quick else args.rounds
    configs = [c for c in args.configs.split(",") if c]
    for c in configs:
        if c not in CONFIGS:
            sys.exit(f"unknown config {c!r}; choose from {list(CONFIGS)}")

    mode = "quick" if args.quick else "full"
    print(f"measuring {len(configs)} configs, {n_ops} ops x {rounds} rounds "
          f"({mode} mode)")
    measured = measure(n_ops, rounds, configs)

    doc = load(args.out)
    failures = []
    if args.check:
        failures = check(measured, reference_entry(doc["entries"], n_ops),
                         [g for g in args.gate.split(",") if g])

    if not args.dry_run:
        doc["entries"].append({
            "label": args.label or
            f"{mode} {datetime.date.today().isoformat()}",
            "date": datetime.date.today().isoformat(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "n_ops": n_ops,
            "rounds": rounds,
            "ops_per_sec": measured,
        })
        args.out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"appended entry #{len(doc['entries'])} to {args.out}")

    if failures:
        print(f"throughput gate FAILED for: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
