"""Measure cache-op throughput and track it in BENCH_throughput.json.

The throughput trajectory (``benchmarks/results/BENCH_throughput.json``)
is an append-only history of what ``bench_throughput.drive`` achieves on
each tracked configuration.  Each run appends one entry; ``--check``
additionally compares the gated configurations against the most recent
committed entry with the same op count and fails (exit 1) on a >25%
regression — the CI smoke gate for the hash-once hot path.  The floor
is normalised for host speed via the ``memcached`` configuration (same
engine, none of the gated machinery), so a slow CI runner rescales the
comparison instead of failing it spuriously.

Usage (from the repo root, PYTHONPATH=src)::

    python benchmarks/record_throughput.py                 # full, append
    python benchmarks/record_throughput.py --quick --check # the CI gate
    python benchmarks/record_throughput.py --dry-run       # measure only
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

from bench_throughput import (CONFIGS, REPLAY_ENGINES, drive,
                              make_bench_trace, replay_trace_ops)

SCHEMA = "repro-kv/bench-throughput/v1"
DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_throughput.json"
#: a gated config may lose at most this fraction vs the reference entry.
REGRESSION_TOLERANCE = 0.25
#: config used to normalise for host speed: it runs the same engine but
#: none of the pama/bloom machinery, so a slower CI box rescales the
#: floor while a hash-once regression (which hits only the gated
#: configs) still trips it.
CALIBRATION_CONFIG = "memcached"
#: the derive-pass replay engine must beat the committed drive-based
#: pama+bloom baseline by this factor (host-normalised; full mode only —
#: quick-mode replays are too short to fill the cache).
DERIVE_MULTIPLIER = 1.3
DERIVE_BASELINE_CONFIG = "pama+bloom"
DERIVE_ENGINE_CONFIG = "replay-derive"
#: at 4 shards the sharded engine must beat the derive engine by this
#: factor — only meaningful with >= 4 cores; single-core hosts record
#: the entry and skip the gate.
SHARDED_MULTIPLIER = 1.8
SHARDED_ENGINE_CONFIG = "replay-sharded4"
SHARDED_MIN_CORES = 4

ALL_LABELS = list(CONFIGS) + list(REPLAY_ENGINES)


def measure(n_ops: int, rounds: int, configs) -> dict[str, float]:
    """Best-of-``rounds`` ops/sec per configuration."""
    out = {}
    traces: dict[int, object] = {}
    for name in configs:
        best = float("inf")
        if name in CONFIGS:
            for _ in range(rounds):
                cache = CONFIGS[name]()
                started = time.perf_counter()
                drive(cache, n=n_ops)
                best = min(best, time.perf_counter() - started)
            rate_ops = n_ops
        else:
            rate_ops = replay_trace_ops(name, n_ops)
            trace = traces.setdefault(rate_ops, make_bench_trace(rate_ops))
            engine = REPLAY_ENGINES[name]
            for _ in range(rounds):
                started = time.perf_counter()
                engine(trace)
                best = min(best, time.perf_counter() - started)
        out[name] = round(rate_ops / best, 1)
        print(f"  {name:<14} {out[name]:>12,.0f} ops/s")
    return out


def load(path: Path) -> dict:
    if path.exists():
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("schema") != SCHEMA:
            sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
        return doc
    return {"schema": SCHEMA,
            "workload": {"driver": "benchmarks/bench_throughput.py::drive",
                         "key_space": 20_000, "seed": 7},
            "entries": []}


def reference_entry(entries: list[dict], n_ops: int) -> dict | None:
    """Most recent committed entry measured at the same op count."""
    for entry in reversed(entries):
        if entry.get("n_ops") == n_ops:
            return entry
    return entries[-1] if entries else None


def check(measured: dict[str, float], reference: dict | None,
          gates: list[str]) -> list[str]:
    failures = []
    if reference is None:
        print("no reference entry to check against; skipping gate")
        return failures
    ref_rates = reference.get("ops_per_sec", {})
    scale = 1.0
    cal_ref = ref_rates.get(CALIBRATION_CONFIG)
    cal_got = measured.get(CALIBRATION_CONFIG)
    if cal_ref and cal_got and CALIBRATION_CONFIG not in gates:
        scale = cal_got / cal_ref
        print(f"host-speed calibration via {CALIBRATION_CONFIG}: "
              f"{cal_got:,.0f} / {cal_ref:,.0f} ops/s -> x{scale:.3f}")
    for gate in gates:
        ref = ref_rates.get(gate)
        got = measured.get(gate)
        if ref is None or got is None:
            continue
        floor = ref * scale * (1.0 - REGRESSION_TOLERANCE)
        verdict = "ok" if got >= floor else "REGRESSION"
        print(f"gate {gate}: {got:,.0f} ops/s vs reference {ref:,.0f} "
              f"({reference.get('label')}, floor {floor:,.0f}) -> {verdict}")
        if got < floor:
            failures.append(gate)
    return failures


def check_engine_multipliers(measured: dict[str, float],
                             reference: dict | None,
                             full_mode: bool) -> list[str]:
    """The replay-engine speedup gates (see module constants).

    * derive: ``replay-derive`` >= 1.3x the committed drive-based
      ``pama+bloom`` rate, host-normalised via the memcached
      calibration.  Full mode only — a quick-mode replay is over before
      the cache fills, so its rate measures a different regime.
    * sharded: ``replay-sharded4`` >= 1.8x the just-measured
      ``replay-derive`` — skipped (recorded, not gated) below
      :data:`SHARDED_MIN_CORES` cores, where the shard replays run
      serially and the multiplier is unreachable by construction.
    """
    failures = []
    got = measured.get(DERIVE_ENGINE_CONFIG)
    ref_rates = (reference or {}).get("ops_per_sec", {})
    ref = ref_rates.get(DERIVE_BASELINE_CONFIG)
    if got and ref:
        if not full_mode:
            print(f"gate {DERIVE_ENGINE_CONFIG} x{DERIVE_MULTIPLIER}: "
                  "skipped in quick mode (replay too short to fill the "
                  "cache)")
        else:
            scale = 1.0
            cal_ref = ref_rates.get(CALIBRATION_CONFIG)
            cal_got = measured.get(CALIBRATION_CONFIG)
            if cal_ref and cal_got:
                scale = cal_got / cal_ref
            floor = ref * scale * DERIVE_MULTIPLIER
            verdict = "ok" if got >= floor else "TOO SLOW"
            print(f"gate {DERIVE_ENGINE_CONFIG}: {got:,.0f} ops/s vs "
                  f"{DERIVE_MULTIPLIER}x baseline {DERIVE_BASELINE_CONFIG} "
                  f"{ref:,.0f} (floor {floor:,.0f}) -> {verdict}")
            if got < floor:
                failures.append(DERIVE_ENGINE_CONFIG)
    derive = measured.get(DERIVE_ENGINE_CONFIG)
    sharded = measured.get(SHARDED_ENGINE_CONFIG)
    if derive and sharded:
        cores = os.cpu_count() or 1
        if cores < SHARDED_MIN_CORES:
            print(f"gate {SHARDED_ENGINE_CONFIG} x{SHARDED_MULTIPLIER}: "
                  f"recorded, gate skipped ({cores} core(s) < "
                  f"{SHARDED_MIN_CORES})")
        else:
            floor = derive * SHARDED_MULTIPLIER
            verdict = "ok" if sharded >= floor else "TOO SLOW"
            print(f"gate {SHARDED_ENGINE_CONFIG}: {sharded:,.0f} ops/s vs "
                  f"{SHARDED_MULTIPLIER}x {DERIVE_ENGINE_CONFIG} "
                  f"{derive:,.0f} (floor {floor:,.0f}) -> {verdict}")
            if sharded < floor:
                failures.append(SHARDED_ENGINE_CONFIG)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=30_000,
                        help="operations per round (default 30000)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="rounds per config; best is kept")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 10000 ops, 2 rounds")
    parser.add_argument("--configs",
                        default=",".join(ALL_LABELS),
                        help="comma-separated configuration labels")
    parser.add_argument("--label", default="",
                        help="entry label (default: quick/full + date)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="trajectory JSON to append to")
    parser.add_argument("--check", action="store_true",
                        help="fail on >25%% regression of gated configs "
                             "against the committed reference entry")
    parser.add_argument("--gate", default="pama,pama+bloom,replay-derive",
                        help="comma-separated configs the --check gates")
    parser.add_argument("--dry-run", action="store_true",
                        help="measure and print, do not touch the file")
    args = parser.parse_args(argv)

    n_ops = 10_000 if args.quick else args.ops
    rounds = 2 if args.quick else args.rounds
    configs = [c for c in args.configs.split(",") if c]
    for c in configs:
        if c not in CONFIGS and c not in REPLAY_ENGINES:
            sys.exit(f"unknown config {c!r}; choose from {ALL_LABELS}")

    mode = "quick" if args.quick else "full"
    print(f"measuring {len(configs)} configs, {n_ops} ops x {rounds} rounds "
          f"({mode} mode)")
    measured = measure(n_ops, rounds, configs)

    doc = load(args.out)
    failures = []
    if args.check:
        reference = reference_entry(doc["entries"], n_ops)
        failures = check(measured, reference,
                         [g for g in args.gate.split(",") if g])
        failures += check_engine_multipliers(measured, reference,
                                             full_mode=not args.quick)

    if not args.dry_run:
        doc["entries"].append({
            "label": args.label or
            f"{mode} {datetime.date.today().isoformat()}",
            "date": datetime.date.today().isoformat(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "n_ops": n_ops,
            "rounds": rounds,
            "ops_per_sec": measured,
        })
        args.out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"appended entry #{len(doc['entries'])} to {args.out}")

    if failures:
        print(f"throughput gate FAILED for: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
