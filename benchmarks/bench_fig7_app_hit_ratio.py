"""Fig 7 — APP hit ratios at 3 cache sizes, trace repeated twice.

Paper's methodology: ~40% of APP misses are cold, so the trace is
replayed a second time to expose the schemes' differences once
compulsory misses are gone.  Shape: pre-PAMA highest, PAMA at/below
PSA, Memcached lowest; every scheme improves in the second half;
bigger caches smooth the series.
"""

from benchmarks.conftest import (APP_CACHE_SIZES, PAPER_POLICIES, run_single,
                                 write_csv)
from repro._util import fmt_bytes
from repro.sim.report import format_table, series_csv


def half_ratios(result):
    """(first-pass, second-pass) hit ratios of a repeated-trace run."""
    windows = result.windows
    half = len(windows) // 2
    first = sum(w.hits for w in windows[:half]) / max(
        sum(w.gets for w in windows[:half]), 1)
    second = sum(w.hits for w in windows[half:]) / max(
        sum(w.gets for w in windows[half:]), 1)
    return first, second


def bench_fig7(benchmark, app_trace, app_sweep, capsys):
    benchmark.pedantic(
        lambda: run_single(app_trace, "pre-pama", APP_CACHE_SIZES[0]),
        rounds=1, iterations=1)

    rows = []
    for size in APP_CACHE_SIZES:
        cmp = app_sweep[size]
        series = {name: cmp.results[name].hit_ratio_series()
                  for name in PAPER_POLICIES}
        write_csv(f"fig7_app_hit_ratio_{fmt_bytes(size)}.csv",
                  series_csv(series))
        for name in PAPER_POLICIES:
            first, second = half_ratios(cmp.results[name])
            rows.append([fmt_bytes(size), name,
                         cmp.results[name].hit_ratio, first, second])
    with capsys.disabled():
        print("\n[fig7] APP hit ratios, trace played twice "
              "(paper: 16/32/64 GB -> scaled 32/64/128 MiB)")
        print(format_table(
            ["cache", "policy", "overall", "first_pass", "second_pass"],
            rows))

    for size in APP_CACHE_SIZES:
        results = app_sweep[size].results
        r = {n: results[n].hit_ratio for n in PAPER_POLICIES}
        # pre-PAMA highest; the reallocating hit-ratio optimisers beat
        # frozen Memcached.  PAMA is exempt from the lower bound: it
        # deliberately trades hits for cheap misses ("PAMA's hit ratios
        # are even lower than those of PSA's").
        assert r["pre-pama"] >= max(r.values()) - 0.02, (size, r)
        assert r["memcached"] <= r["psa"] + 0.01, (size, r)
        assert r["pama"] <= r["psa"] + 0.02, (size, r)
        # second pass (no cold misses) beats the first for the
        # hit-ratio-driven schemes; PAMA is judged on service time
        # (see bench_fig8), since better-valued misses may cost hits
        for name in ("memcached", "psa", "pre-pama"):
            first, second = half_ratios(results[name])
            assert second > first, (size, name)
        p1, p2 = (sum(w.service_sum for w in h) / max(sum(w.gets for w in h), 1)
                  for h in (results["pama"].windows[:len(results["pama"].windows) // 2],
                            results["pama"].windows[len(results["pama"].windows) // 2:]))
        assert p2 < p1, (size, "pama service time must improve")
