"""Fig 6 — ETC average request service time at 3 cache sizes.

Paper's shape: "in all cache sizes PAMA achieves the shortest service
time", despite its hit ratio trailing pre-PAMA/PSA; the advantage is
largest when the cache is small (more misses to steer toward cheap
items).
"""

from benchmarks.conftest import (ETC_CACHE_SIZES, PAPER_POLICIES, run_single,
                                 write_csv)
from repro._util import fmt_bytes
from repro.sim.report import format_table, series_csv

SMALL, MID, LARGE = ETC_CACHE_SIZES


def bench_fig6(benchmark, etc_trace, etc_sweep, capsys):
    benchmark.pedantic(lambda: run_single(etc_trace, "pama", SMALL),
                       rounds=1, iterations=1)

    rows = []
    for size in ETC_CACHE_SIZES:
        cmp = etc_sweep[size]
        series = {name: cmp.results[name].service_time_series()
                  for name in PAPER_POLICIES}
        write_csv(f"fig6_etc_service_time_{fmt_bytes(size)}.csv",
                  series_csv(series))
        for name in PAPER_POLICIES:
            rows.append([fmt_bytes(size), name,
                         cmp.results[name].avg_service_time * 1e3])
    with capsys.disabled():
        print("\n[fig6] ETC avg service time, ms (paper: PAMA lowest at "
              "every size)")
        print(format_table(["cache", "policy", "avg_service_ms"], rows))

    for size in ETC_CACHE_SIZES:
        r = {n: etc_sweep[size].results[n].avg_service_time
             for n in PAPER_POLICIES}
        assert r["pama"] <= min(r.values()) * 1.02, (size, r)
        # penalty-awareness is the differentiator: PAMA beats its own
        # penalty-blind ablation
        assert r["pama"] <= r["pre-pama"] * 1.01, (size, r)

    # the advantage over the static baseline is substantial at the small
    # cache (paper reports large reductions)
    small = etc_sweep[SMALL].results
    assert (small["pama"].avg_service_time
            < 0.92 * small["memcached"].avg_service_time)
