"""Ablation C — the related-work policies the paper discusses but
does not plot.

§II dismisses Facebook's age balancer (no size/penalty awareness),
Twemcache's random donor (can raid efficiently-used classes), the
1.4.11 automover (too conservative), and LAMA (average-penalty
optimisation).  This bench runs all eight schemes on the same ETC
replay to verify each criticism empirically.
"""

from benchmarks.conftest import BENCH_JOBS, base_spec, run_single, write_csv
from repro._util import MIB
from repro.sim import run_comparison
from repro.sim.report import format_table

CACHE = 32 * MIB
ALL_POLICIES = ["memcached", "automove", "facebook", "twemcache", "psa",
                "lama", "pre-pama", "pama"]


def bench_ablation_baselines(benchmark, etc_trace, capsys):
    benchmark.pedantic(lambda: run_single(etc_trace, "lama", CACHE),
                       rounds=1, iterations=1)
    cmp = run_comparison(etc_trace, base_spec("baselines", CACHE),
                         ALL_POLICIES, jobs=BENCH_JOBS)

    rows = [[name, r.hit_ratio, r.avg_service_time * 1e3,
             r.cache_stats["migrations"], r.cache_stats["evictions"]]
            for name, r in cmp.results.items()]
    write_csv("ablation_baselines.csv",
              "policy,hit_ratio,avg_service_ms,migrations,evictions\n"
              + "".join(f"{n},{r.hit_ratio:.6f},"
                        f"{r.avg_service_time*1e3:.4f},"
                        f"{r.cache_stats['migrations']:.0f},"
                        f"{r.cache_stats['evictions']:.0f}\n"
                        for n, r in cmp.results.items()))
    with capsys.disabled():
        print("\n[ablation C] all eight policies (ETC, 32MiB)")
        print(format_table(
            ["policy", "hit_ratio", "avg_service_ms", "migrations",
             "evictions"], rows))

    r = cmp.results
    # PAMA still wins service time against the extended field
    pama = r["pama"].avg_service_time
    for name in ALL_POLICIES:
        assert pama <= r[name].avg_service_time * 1.02, name
    # the automover is conservative: fewer migrations than PSA
    assert (r["automove"].cache_stats["migrations"]
            <= r["psa"].cache_stats["migrations"])
    # twemcache's random donor churns much more than PSA's targeted move
    assert (r["twemcache"].cache_stats["migrations"]
            > r["psa"].cache_stats["migrations"])
    # every reallocating scheme beats frozen Memcached on hit ratio
    static_hr = r["memcached"].hit_ratio
    for name in ("psa", "facebook", "pre-pama", "pama"):
        assert r[name].hit_ratio >= static_hr - 0.02, name
