"""Chaos bench — fault-layer cost and the brownout headline claim.

Two questions:

1. **What does resilience cost when nothing fails?**  The routed path
   (successor walk, breaker gate, latency channel) only runs when an
   injector is attached; with ``faults=None`` the cluster takes the
   exact pre-fault code path.  We time both — plus an *empty-plan*
   injector, the worst honest baseline for the resilient path — and
   assert the no-injector run matches the empty-plan run result for
   result equality (the byte-identical guard) while reporting the
   wall-clock overhead of the armed path.

2. **Does PAMA's advantage widen when the backend misbehaves?**  The
   paper's premise is that penalty-aware allocation matters most when
   penalties are volatile; the ``backend-brownout`` scenario triples
   miss penalties mid-run, and PAMA's service-time advantage over
   pre-PAMA must grow.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_csv
from repro._util import MIB
from repro.cache import SizeClassConfig
from repro.cluster import CacheCluster
from repro.faults import FaultInjector, FaultPlan, run_scenario
from repro.policies import make_policy
from repro.sim.report import series_csv
from repro.sim.simulator import simulate
from repro.traces import ETC, generate

REQUESTS = 120_000
WINDOW = 30_000
SCALE = 0.1
NODES = 2
PER_NODE = 4 * MIB
ROUNDS = 5


def _cluster(faults):
    return CacheCluster([f"node{i}" for i in range(NODES)], PER_NODE,
                        lambda: make_policy("pama", value_window=WINDOW // 2),
                        size_classes=SizeClassConfig(slab_size=64 << 10),
                        faults=faults)


def bench_fault_layer_disabled_overhead():
    trace = generate(ETC.scaled(SCALE), REQUESTS, seed=7)

    def run(armed: bool):
        faults = FaultInjector(FaultPlan()) if armed else None
        cluster = _cluster(faults)
        started = time.perf_counter()
        result = simulate(trace, cluster, window_gets=WINDOW, faults=faults)
        return time.perf_counter() - started, result

    best = {False: float("inf"), True: float("inf")}
    results = {}
    for round_idx in range(ROUNDS):
        order = (False, True) if round_idx % 2 == 0 else (True, False)
        for armed in order:
            elapsed, result = run(armed)
            best[armed] = min(best[armed], elapsed)
            results[armed] = result

    # The byte-identical guard: an empty plan may cost wall-clock but
    # must not change a single metric.
    assert results[True].hit_ratio == results[False].hit_ratio
    assert (results[True].avg_service_time
            == results[False].avg_service_time)
    assert ([w.hit_ratio for w in results[True].windows]
            == [w.hit_ratio for w in results[False].windows])

    overhead = best[True] / best[False] - 1.0
    print(f"\nfaults=None (pre-fault path):  {best[False] * 1e3:8.1f} ms")
    print(f"empty-plan injector (armed):   {best[True] * 1e3:8.1f} ms "
          f"({overhead:+.2%})")


def bench_chaos_brownout_widens_pama_advantage():
    trace = generate(ETC.scaled(SCALE), REQUESTS, seed=101)
    report = run_scenario("backend-brownout", trace,
                          policies=["pre-pama", "pama"], node_count=NODES,
                          capacity_bytes=PER_NODE, window_gets=WINDOW,
                          seed=7)
    print()
    print(report.format())
    base_adv, fault_adv = report.advantage()
    series = {}
    for name, outcome in report.outcomes.items():
        series[f"{name}_base"] = outcome.baseline.service_time_series()
        series[f"{name}_fault"] = outcome.faulted.service_time_series()
    write_csv("chaos_brownout_service_time.csv", series_csv(series))
    assert base_adv > 0, "PAMA should beat pre-PAMA fault-free here"
    assert fault_adv > base_adv, (
        f"brownout should widen PAMA's advantage: "
        f"{base_adv:.6f} -> {fault_adv:.6f}")


if __name__ == "__main__":
    bench_fault_layer_disabled_overhead()
    bench_chaos_brownout_widens_pama_advantage()
