"""Ablation D — offline bounds and item-level cost-awareness.

Two extension baselines bracket the online policies:

* **oracle** (Belady's MIN within Memcached's allocation) bounds what
  better *replacement* alone could buy on hit ratio;
* **oracle-cost** (penalty-weighted Belady) bounds the service-time
  side;
* **gds** (GreedyDual-Size) answers "would item-level cost-aware
  eviction suffice, without slab-level penalty-aware allocation?" —
  the paper's implicit claim is that it would not.
"""

from dataclasses import replace

from benchmarks.conftest import base_spec, write_csv
from repro._util import MIB
from repro.sim import run_comparison
from repro.sim.report import format_table

CACHE = 16 * MIB
POLICIES = ["memcached", "gds", "gds-alloc", "oracle", "oracle-cost", "pama"]


def bench_ablation_oracle(benchmark, etc_trace, capsys):
    spec = base_spec("oracle", CACHE)
    spec = replace(spec, policy_kwargs={
        **spec.policy_kwargs,
        "oracle": {"trace": etc_trace},
        "oracle-cost": {"trace": etc_trace},
    })

    # jobs=1 on purpose: the oracle policies carry the trace inside
    # policy_kwargs, which a worker pool would re-pickle per task —
    # exactly what the shared-memory transport exists to avoid.
    cmp = benchmark.pedantic(
        lambda: run_comparison(etc_trace, spec, POLICIES, jobs=1),
        rounds=1, iterations=1)

    rows = [[name, r.hit_ratio, r.avg_service_time * 1e3,
             r.cache_stats["total_miss_penalty"]]
            for name, r in cmp.results.items()]
    write_csv("ablation_oracle.csv",
              "policy,hit_ratio,avg_service_ms,total_miss_penalty_s\n"
              + "".join(f"{n},{r.hit_ratio:.6f},"
                        f"{r.avg_service_time*1e3:.4f},"
                        f"{r.cache_stats['total_miss_penalty']:.2f}\n"
                        for n, r in cmp.results.items()))
    with capsys.disabled():
        print("\n[ablation D] offline bounds + GreedyDual-Size (ETC, 16MiB)")
        print(format_table(
            ["policy", "hit_ratio", "avg_service_ms", "miss_penalty_s"],
            rows))

    r = cmp.results
    # Belady with the same allocation dominates LRU on hit ratio
    assert r["oracle"].hit_ratio >= r["memcached"].hit_ratio - 0.005
    # the cost-aware oracle dominates everything on service time
    assert (r["oracle-cost"].avg_service_time
            <= min(x.avg_service_time for x in r.values()) * 1.02)
    # item-level cost-awareness (classic GDS) helps over plain LRU...
    assert (r["gds"].avg_service_time
            <= r["memcached"].avg_service_time * 1.02)
    # ...but cannot reallocate space across classes, so penalty-aware
    # *allocation* (PAMA) beats it — the paper's core claim
    assert r["pama"].avg_service_time < r["gds"].avg_service_time
    # observation worth recording: granting GDS cost-aware allocation
    # too ("gds-alloc") makes it competitive with PAMA — cost-awareness
    # in the allocator is the load-bearing idea, wherever it lives
    assert (r["gds-alloc"].avg_service_time
            <= r["memcached"].avg_service_time)
