"""Fig 3 — per-class slab allocation over time under the four schemes.

Paper's observations on the ETC / 4 GB run (our 32 MiB scale point):

* original Memcached freezes its allocation after warm-up;
* PSA aggressively funnels slabs toward the dominant small-item class;
* pre-PAMA shifts in the same direction but more slowly (near-bottom
  accesses drive it, not raw request counts);
* PAMA's allocation is distinctly more even across classes because
  high-penalty subclasses in mid/large classes retain space.
"""

from benchmarks.conftest import (ETC_CACHE_SIZES, PAPER_POLICIES, run_single,
                                 write_csv)
from repro.sim.report import series_csv

MID = ETC_CACHE_SIZES[1]


def _top_share(dist: dict[int, int]) -> float:
    total = sum(dist.values())
    return max(dist.values()) / total if total else 0.0


def _concentration(dist: dict[int, int]) -> float:
    """Herfindahl index of the slab allocation (1.0 = one class has all)."""
    total = sum(dist.values())
    if not total:
        return 0.0
    return sum((n / total) ** 2 for n in dist.values())


def bench_fig3(benchmark, etc_trace, etc_sweep, capsys):
    # time one representative replay (PAMA at the Fig 3 size)
    benchmark.pedantic(lambda: run_single(etc_trace, "pama", MID),
                       rounds=1, iterations=1)

    cmp = etc_sweep[MID]
    classes = sorted({c for r in cmp.results.values()
                      for w in r.windows for c in w.class_slabs})
    lines = []
    for policy in PAPER_POLICIES:
        result = cmp.results[policy]
        series = {f"class{c}": result.class_slab_series(c) for c in classes}
        path = write_csv(f"fig3_{policy}_class_slabs.csv", series_csv(series))
        final = result.final_class_slabs
        lines.append(f"  {policy:>10s}: final top-class share "
                     f"{_top_share(final):.2f}, classes used {len(final)}, "
                     f"-> {path}")
    with capsys.disabled():
        print("\n[fig3] per-class slab allocation over time (ETC, 32MiB)")
        print("\n".join(lines))

    static = cmp.results["memcached"]
    psa = cmp.results["psa"]
    pama = cmp.results["pama"]

    # Memcached: allocation frozen once memory is exhausted
    assert static.cache_stats["migrations"] == 0
    late = static.windows[len(static.windows) // 2].class_slabs
    assert late == static.final_class_slabs

    # PSA concentrates on the dominant class; PAMA spreads more evenly —
    # both by top-class share and by overall concentration (Herfindahl)
    assert _top_share(psa.final_class_slabs) > _top_share(
        pama.final_class_slabs) - 0.02
    assert _concentration(pama.final_class_slabs) < _concentration(
        psa.final_class_slabs)
    # reallocation actually happened in the dynamic schemes
    for name in ("psa", "pre-pama", "pama"):
        assert cmp.results[name].cache_stats["migrations"] > 0, name
