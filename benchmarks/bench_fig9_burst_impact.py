"""Fig 9 — impact of caching unpopular (cold-burst) items: PSA vs PAMA.

Paper §IV-C: after ~0.35M GETs, cold items worth ~10% of the cache are
injected into three size classes.  PSA chases the burst's misses with
slabs, loses hit ratio, and recovers slowly; PAMA's slab values push
the cold items out quickly and its service time is barely affected.

The bench replays ETC with and without the burst under both schemes and
reports the per-window hit-ratio/service series plus two scalar shape
metrics: the peak degradation and the recovery integral (total excess
service time attributable to the burst).
"""

from benchmarks.conftest import base_spec, write_csv
from repro._util import MIB
from repro.sim import run_comparison
from repro.sim.report import format_table, series_csv
from repro.traces import ETC, generate, inject_burst

CACHE = 32 * MIB
BURST_AT_GET = 150_000
WINDOW = 20_000


def _run(trace):
    spec = base_spec("fig9", CACHE)
    from dataclasses import replace
    spec = replace(spec, window_gets=WINDOW,
                   policy_kwargs={**spec.policy_kwargs,
                                  "psa": {"m_misses": 200}})
    return run_comparison(trace, spec, ["psa", "pama"])


def excess_integral(with_burst, without) -> float:
    """Total extra service seconds across windows vs the no-burst run."""
    ws, wo = with_burst.windows, without.windows
    return sum(max(a.service_sum - b.service_sum, 0.0)
               for a, b in zip(ws, wo))


def bench_fig9(benchmark, capsys):
    base = generate(ETC.scaled(0.5), 450_000, seed=2015)
    burst = inject_burst(base, at_get=BURST_AT_GET,
                         total_bytes=CACHE // 10,
                         size_lo=256, size_hi=1_024, seed=9)

    plain = _run(base)
    hit = benchmark.pedantic(lambda: _run(burst), rounds=1, iterations=1)

    rows = []
    metrics = {}
    for policy in ("psa", "pama"):
        p, h = plain.results[policy], hit.results[policy]
        dip = max((a.hit_ratio - b.hit_ratio)
                  for a, b in zip(p.windows, h.windows))
        excess = excess_integral(h, p)
        metrics[policy] = (dip, excess)
        rows.append([policy, p.hit_ratio, h.hit_ratio, dip,
                     p.avg_service_time * 1e3, h.avg_service_time * 1e3,
                     excess])
        write_csv(f"fig9_{policy}_hit_ratio.csv", series_csv({
            "no_burst": p.hit_ratio_series(),
            "with_burst": h.hit_ratio_series()}))
        write_csv(f"fig9_{policy}_service_time.csv", series_csv({
            "no_burst": p.service_time_series(),
            "with_burst": h.service_time_series()}))
    with capsys.disabled():
        print("\n[fig9] cold-burst impact (10% of a 32MiB cache, "
              "3 size classes)")
        print(format_table(
            ["policy", "hr", "hr_burst", "max_window_dip",
             "svc_ms", "svc_ms_burst", "excess_service_s"], rows))

    psa_dip, psa_excess = metrics["psa"]
    pama_dip, pama_excess = metrics["pama"]
    # both dip while absorbing the burst's own compulsory misses...
    assert psa_dip > 0 and pama_dip > 0
    # ...but PAMA's total service-time damage is no worse than PSA's
    # (the paper: "PAMA's average request time is little affected")
    assert pama_excess <= psa_excess * 1.10, (pama_excess, psa_excess)
    # and PAMA's overall service time under the burst still beats PSA's
    assert (hit.results["pama"].avg_service_time
            < hit.results["psa"].avg_service_time)
