"""Ablation E — fixed vs quantile-adaptive subclass penalty edges.

The paper hard-codes five penalty ranges tuned to Facebook-like
penalty spreads.  On a workload whose penalties cluster inside one of
those ranges, fixed binning collapses every item into a single
subclass; the adaptive extension (:mod:`repro.core.adaptive`) learns
edges at observed quantiles and keeps five populated subclasses.

**Finding (negative result, kept on purpose):** recovering the
stratification does *not* pay at these scales.  Splitting a class into
five subclasses fragments its slab budget (ghosts, per-queue slack,
coarser migration granularity), and when penalties only span a decade
the value differences cannot buy that back — single-bin PAMA (which
degenerates toward hit-ratio optimisation) wins.  The paper's coarse
fixed ranges are therefore a *robust* choice, not a limitation: bins
should separate decades, not quantiles.  The bench asserts the
mechanics (bins collapse/recover) and bounds the adaptive variant's
cost, rather than claiming a win for it.
"""

from dataclasses import replace as dc_replace

from benchmarks.conftest import (BENCH_JOBS, ETC_SCALE, SEED, base_spec,
                                 write_csv)
from repro._util import MIB
from repro.sim import run_comparison
from repro.sim.report import format_table
from repro.traces import ETC, generate
from repro.traces.penalty import PenaltyModel
from repro.traces.synthetic import SyntheticTraceGenerator

CACHE = 16 * MIB
POLICIES = ["pama", "pama-adaptive"]


def clustered_trace(n=400_000):
    """ETC-like trace whose penalties all land in one fixed bin.

    base 30 ms, sigma 0.35 → ~99% of penalties inside (10ms, 100ms],
    the paper's third range, yet still spanning ~1 decade.
    """
    profile = ETC.scaled(ETC_SCALE)
    model = PenaltyModel(base_penalty=0.03, correlation=0.0, sigma=0.35,
                         unknown_fraction=0.0, min_penalty=0.011,
                         cap=0.099, seed=SEED)
    gen = SyntheticTraceGenerator(profile, seed=SEED, penalty_model=model)
    return gen.generate(n)


def _spec():
    spec = base_spec("adaptive", CACHE)
    return dc_replace(spec, policy_kwargs={
        "pama": {"value_window": 50_000},
        "pama-adaptive": {"value_window": 50_000,
                          "warmup_samples": 20_000},
    })


def bench_ablation_adaptive(benchmark, etc_trace, capsys):
    clustered = clustered_trace()

    def run_both():
        return (run_comparison(etc_trace, _spec(), POLICIES,
                               jobs=BENCH_JOBS),
                run_comparison(clustered, _spec(), POLICIES,
                               jobs=BENCH_JOBS))

    broad, narrow = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, cmp in (("broad", broad), ("clustered", narrow)):
        for name in POLICIES:
            r = cmp.results[name]
            rows.append([label, name, r.hit_ratio,
                         r.avg_service_time * 1e3])
    write_csv("ablation_adaptive.csv",
              "workload,policy,hit_ratio,avg_service_ms\n" + "".join(
                  f"{r[0]},{r[1]},{r[2]:.6f},{r[3]:.4f}\n" for r in rows))
    with capsys.disabled():
        print("\n[ablation E] fixed vs adaptive penalty bins (ETC, 16MiB)")
        print(format_table(
            ["workload", "policy", "hit_ratio", "avg_service_ms"], rows))
        adaptive = narrow.results["pama-adaptive"].cache_stats
        print(f"  clustered/adaptive migrations: {adaptive['migrations']:.0f}")

    # sanity: the clustered workload really collapses fixed bins
    fixed_bins = {q[1] for q in narrow.results["pama"].final_queue_slabs}
    adaptive_bins = {q[1] for q in
                     narrow.results["pama-adaptive"].final_queue_slabs}
    assert len(adaptive_bins) > len(fixed_bins), (fixed_bins, adaptive_bins)

    # the adaptive variant's fragmentation cost stays bounded on both
    # workloads (see module docstring: it does not win, and that is the
    # recorded finding)
    assert (broad.results["pama-adaptive"].avg_service_time
            <= broad.results["pama"].avg_service_time * 1.15)
    assert (narrow.results["pama-adaptive"].avg_service_time
            <= narrow.results["pama"].avg_service_time * 1.25)
    # and single-bin PAMA on clustered penalties behaves like a hit-ratio
    # optimiser: its hit ratio beats its own adaptive variant
    assert (narrow.results["pama"].hit_ratio
            >= narrow.results["pama-adaptive"].hit_ratio - 0.005)
