"""Microbenchmark — cache operation throughput per policy.

Not a paper figure: this guards the simulator's own performance (the
paper replays ~10^9 requests; our per-request cost determines how far
the scaled experiments can go) and quantifies each policy's bookkeeping
overhead per operation.

The measured trajectory lives in ``benchmarks/results/BENCH_throughput.json``
(see ``record_throughput.py``, which appends to it and gates CI on
regressions).  ``REPRO_BENCH_OPS`` overrides the op count for quick
smoke runs.
"""

import os
import random

import numpy as np
import pytest

from repro._util import MIB
from repro.cache import SlabCache, SizeClassConfig
from repro.policies import make_policy
from repro.sim.experiment import ExperimentSpec
from repro.sim.sharded import run_sharded
from repro.sim.simulator import simulate
from repro.traces.record import Trace

N_OPS = int(os.environ.get("REPRO_BENCH_OPS", "30000"))


def drive(cache, n=N_OPS, seed=7):
    rng = random.Random(seed)
    randrange = rng.randrange
    choice = rng.choice
    sizes = (40, 200, 900, 3000)
    pens = (0.0005, 0.005, 0.05, 0.5, 2.0)
    lookup, set_ = cache.lookup, cache.set
    for _ in range(n):
        key = randrange(20_000)
        size = choice(sizes)
        pen = choice(pens)
        if lookup(key, 16, size, pen) is None:
            set_(key, 16, size, pen)
    return cache


def fresh_cache(policy_name, tracker="exact"):
    kwargs = {"value_window": 25_000} if "pama" in policy_name else {}
    if tracker != "exact":
        kwargs["tracker"] = tracker
    return SlabCache(16 * MIB, make_policy(policy_name, **kwargs),
                     SizeClassConfig(slab_size=64 << 10, base_size=64))


#: every tracked configuration, keyed by the label used in
#: BENCH_throughput.json.
CONFIGS = {
    "memcached": lambda: fresh_cache("memcached"),
    "psa": lambda: fresh_cache("psa"),
    "lama": lambda: fresh_cache("lama"),
    "pama": lambda: fresh_cache("pama"),
    "pre-pama": lambda: fresh_cache("pre-pama"),
    "pama+bloom": lambda: fresh_cache("pama", tracker="bloom"),
}


# -- replay-engine configurations --------------------------------------------
# The drive() loop measures raw cache-op cost (RNG included).  The
# replay-* labels measure the simulator's replay engines on the same
# workload pre-generated as a columnar trace: scalar loop, vectorized
# derive pass, and the key-sharded parallel engine — all against the
# pama+bloom cache, the heaviest tracked configuration.

#: shard count of the ``replay-sharded4`` label.
REPLAY_SHARDS = 4
#: the sharded label replays a trace this many times larger than
#: ``--ops`` so worker startup amortizes; its ops/s stays comparable
#: (throughput is a rate).
REPLAY_SHARDED_SCALE = 4 * REPLAY_SHARDS


def make_bench_trace(n=N_OPS, seed=7):
    """All-GET columnar mirror of :func:`drive`'s request distribution.

    Same key space, size mix, and penalty mix as ``drive`` (fill-on-miss
    replay turns each GET miss into the same lookup-then-set pair), so
    replay-engine ops/s are comparable with the drive-based labels.
    """
    rng = random.Random(seed)
    randrange = rng.randrange
    choice = rng.choice
    sizes = (40, 200, 900, 3000)
    pens = (0.0005, 0.005, 0.05, 0.5, 2.0)
    keys = [randrange(20_000) for _ in range(n)]
    vals = [choice(sizes) for _ in range(n)]
    penalties = [choice(pens) for _ in range(n)]
    return Trace(np.zeros(n, np.uint8), np.array(keys, np.int64),
                 np.full(n, 16, np.int32), np.array(vals, np.int32),
                 np.array(penalties, np.float64))


def replay_spec(cache_bytes=16 * MIB) -> ExperimentSpec:
    """The pama+bloom replay experiment behind the replay-* labels."""
    return ExperimentSpec(name="bench", cache_bytes=cache_bytes,
                          slab_size=64 << 10, base_size=64,
                          window_gets=1 << 30,  # windows off the hot path
                          policy_kwargs={"pama": {"value_window": 25_000,
                                                  "tracker": "bloom"}})


def replay_scalar(trace) -> None:
    cache = replay_spec().build_cache("pama")
    simulate(trace, cache, window_gets=1 << 30, derive=False)


def replay_derive(trace) -> None:
    cache = replay_spec().build_cache("pama")
    simulate(trace, cache, window_gets=1 << 30, derive=True)


def replay_sharded(trace) -> None:
    run_sharded(trace, replay_spec(), "pama", shards=REPLAY_SHARDS)


#: replay-engine labels tracked in BENCH_throughput.json, mapping to a
#: whole-replay callable over a :func:`make_bench_trace` trace.
REPLAY_ENGINES = {
    "replay-scalar": replay_scalar,
    "replay-derive": replay_derive,
    f"replay-sharded{REPLAY_SHARDS}": replay_sharded,
}


def replay_trace_ops(label: str, n_ops: int) -> int:
    """Trace length behind one replay label at a given ``--ops``."""
    if label == f"replay-sharded{REPLAY_SHARDS}":
        return n_ops * REPLAY_SHARDED_SCALE
    return n_ops


@pytest.mark.parametrize("policy", ["memcached", "psa", "lama", "pama",
                                    "pre-pama"])
def bench_ops_throughput(benchmark, policy):
    result = benchmark.pedantic(
        lambda: drive(CONFIGS[policy]()), rounds=3, iterations=1)
    result.check_invariants()
    assert result.stats.gets == N_OPS


def bench_pama_bloom_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: drive(CONFIGS["pama+bloom"]()), rounds=3, iterations=1)
    assert result.stats.gets == N_OPS


@pytest.mark.parametrize("engine", ["replay-scalar", "replay-derive"])
def bench_replay_engine_throughput(benchmark, engine):
    trace = make_bench_trace(N_OPS)
    benchmark.pedantic(lambda: REPLAY_ENGINES[engine](trace),
                       rounds=3, iterations=1)
