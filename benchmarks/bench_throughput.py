"""Microbenchmark — cache operation throughput per policy.

Not a paper figure: this guards the simulator's own performance (the
paper replays ~10^9 requests; our per-request cost determines how far
the scaled experiments can go) and quantifies each policy's bookkeeping
overhead per operation.
"""

import random

import pytest

from repro._util import MIB
from repro.cache import SlabCache, SizeClassConfig
from repro.policies import make_policy

N_OPS = 30_000


def drive(cache, n=N_OPS, seed=7):
    rng = random.Random(seed)
    randrange = rng.randrange
    choice = rng.choice
    sizes = (40, 200, 900, 3000)
    pens = (0.0005, 0.005, 0.05, 0.5, 2.0)
    get, set_ = cache.get, cache.set
    for _ in range(n):
        key = randrange(20_000)
        size = choice(sizes)
        pen = choice(pens)
        if get(key, (16, size, pen)) is None:
            set_(key, 16, size, pen)
    return cache


def fresh_cache(policy_name):
    kwargs = {"value_window": 25_000} if "pama" in policy_name else {}
    return SlabCache(16 * MIB, make_policy(policy_name, **kwargs),
                     SizeClassConfig(slab_size=64 << 10, base_size=64))


@pytest.mark.parametrize("policy", ["memcached", "psa", "lama", "pama",
                                    "pre-pama"])
def bench_ops_throughput(benchmark, policy):
    result = benchmark.pedantic(
        lambda: drive(fresh_cache(policy)), rounds=3, iterations=1)
    result.check_invariants()
    assert result.stats.gets == N_OPS


def bench_pama_bloom_throughput(benchmark):
    def run():
        cache = SlabCache(
            16 * MIB,
            make_policy("pama", tracker="bloom", value_window=25_000),
            SizeClassConfig(slab_size=64 << 10, base_size=64))
        return drive(cache)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.stats.gets == N_OPS
