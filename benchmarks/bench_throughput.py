"""Microbenchmark — cache operation throughput per policy.

Not a paper figure: this guards the simulator's own performance (the
paper replays ~10^9 requests; our per-request cost determines how far
the scaled experiments can go) and quantifies each policy's bookkeeping
overhead per operation.

The measured trajectory lives in ``benchmarks/results/BENCH_throughput.json``
(see ``record_throughput.py``, which appends to it and gates CI on
regressions).  ``REPRO_BENCH_OPS`` overrides the op count for quick
smoke runs.
"""

import os
import random

import pytest

from repro._util import MIB
from repro.cache import SlabCache, SizeClassConfig
from repro.policies import make_policy

N_OPS = int(os.environ.get("REPRO_BENCH_OPS", "30000"))


def drive(cache, n=N_OPS, seed=7):
    rng = random.Random(seed)
    randrange = rng.randrange
    choice = rng.choice
    sizes = (40, 200, 900, 3000)
    pens = (0.0005, 0.005, 0.05, 0.5, 2.0)
    lookup, set_ = cache.lookup, cache.set
    for _ in range(n):
        key = randrange(20_000)
        size = choice(sizes)
        pen = choice(pens)
        if lookup(key, 16, size, pen) is None:
            set_(key, 16, size, pen)
    return cache


def fresh_cache(policy_name, tracker="exact"):
    kwargs = {"value_window": 25_000} if "pama" in policy_name else {}
    if tracker != "exact":
        kwargs["tracker"] = tracker
    return SlabCache(16 * MIB, make_policy(policy_name, **kwargs),
                     SizeClassConfig(slab_size=64 << 10, base_size=64))


#: every tracked configuration, keyed by the label used in
#: BENCH_throughput.json.
CONFIGS = {
    "memcached": lambda: fresh_cache("memcached"),
    "psa": lambda: fresh_cache("psa"),
    "lama": lambda: fresh_cache("lama"),
    "pama": lambda: fresh_cache("pama"),
    "pre-pama": lambda: fresh_cache("pre-pama"),
    "pama+bloom": lambda: fresh_cache("pama", tracker="bloom"),
}


@pytest.mark.parametrize("policy", ["memcached", "psa", "lama", "pama",
                                    "pre-pama"])
def bench_ops_throughput(benchmark, policy):
    result = benchmark.pedantic(
        lambda: drive(CONFIGS[policy]()), rounds=3, iterations=1)
    result.check_invariants()
    assert result.stats.gets == N_OPS


def bench_pama_bloom_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: drive(CONFIGS["pama+bloom"]()), rounds=3, iterations=1)
    assert result.stats.gets == N_OPS
