"""Shared machinery for the figure-reproduction benchmarks.

Scaling (see DESIGN.md): the paper drives 4-64 GB caches with ~10^9
Facebook requests; we shrink every axis together — 64 KiB slabs,
16-128 MiB caches, a few 10^5 synthetic requests over proportionally
smaller key universes — which preserves the slab-count and
pressure ratios that drive all allocation decisions.

Heavy simulations run once per session (fixtures below); each bench
then times one representative run via the ``benchmark`` fixture and
asserts the figure's qualitative claim.  Every bench also writes the
series the paper's figure plots to ``benchmarks/results/*.csv``.
"""

from __future__ import annotations

import os

import pytest

from repro._util import MIB
from repro.sim import ExperimentSpec, run_comparison, sweep_cache_sizes
from repro.traces import APP, ETC, generate

# Worker processes for the figure sweeps; the merged results are
# identical at any job count (run_grid's determinism), so this only
# moves wall-clock.  0 = one worker per spare core.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1")) or None

# -- scale constants ---------------------------------------------------------

ETC_SCALE = 0.5           # ~150k warm keys
ETC_REQUESTS = 500_000
ETC_CACHE_SIZES = [16 * MIB, 32 * MIB, 64 * MIB]   # paper: 4/8/16 GB

APP_SCALE = 0.3           # ~60k warm keys, bigger values
APP_REQUESTS = 250_000    # repeated 2x, like the paper's Fig 7/8
APP_CACHE_SIZES = [32 * MIB, 64 * MIB, 128 * MIB]  # paper: 16/32/64 GB

SLAB = 64 * 1024
WINDOW_GETS = 50_000      # paper: 1M GETs per metrics window
SEED = 2015               # the paper's year

PAPER_POLICIES = ["memcached", "psa", "pre-pama", "pama"]

POLICY_KWARGS = {
    "pama": {"value_window": 50_000},
    "pre-pama": {"value_window": 50_000},
    "psa": {"m_misses": 500},
    "automove": {"window_accesses": 50_000},
    "facebook": {"check_interval": 10_000},
    "lama": {"epoch_accesses": 100_000},
}


def base_spec(name: str, cache_bytes: int) -> ExperimentSpec:
    return ExperimentSpec(name=name, cache_bytes=cache_bytes,
                          slab_size=SLAB, window_gets=WINDOW_GETS,
                          policy_kwargs=POLICY_KWARGS)


def results_dir() -> str:
    path = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_csv(filename: str, content: str) -> str:
    path = os.path.join(results_dir(), filename)
    with open(path, "w") as fh:
        fh.write(content)
    return path


# -- session-scoped workloads and sweeps --------------------------------------

@pytest.fixture(scope="session")
def etc_trace():
    return generate(ETC.scaled(ETC_SCALE), ETC_REQUESTS, seed=SEED)


@pytest.fixture(scope="session")
def app_trace():
    """APP trace played twice, per the paper's Fig 7/8 methodology."""
    return generate(APP.scaled(APP_SCALE), APP_REQUESTS, seed=SEED).repeat(2)


@pytest.fixture(scope="session")
def etc_sweep(etc_trace):
    """Figs 3/5/6 data: ETC × {policies} × {cache sizes}."""
    return sweep_cache_sizes(etc_trace, base_spec("etc", ETC_CACHE_SIZES[0]),
                             PAPER_POLICIES, ETC_CACHE_SIZES,
                             jobs=BENCH_JOBS)


@pytest.fixture(scope="session")
def app_sweep(app_trace):
    """Figs 7/8 data: APP × {policies} × {cache sizes}."""
    return sweep_cache_sizes(app_trace, base_spec("app", APP_CACHE_SIZES[0]),
                             PAPER_POLICIES, APP_CACHE_SIZES,
                             jobs=BENCH_JOBS)


def run_single(trace, policy: str, cache_bytes: int):
    """One policy / one size replay (the unit the benches time)."""
    spec = base_spec(f"bench-{policy}", cache_bytes)
    return run_comparison(trace, spec, [policy]).results[policy]
