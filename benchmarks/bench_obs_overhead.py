"""Microbenchmark — obs instrumentation cost on the simulate hot path.

The acceptance bar for repro.obs: with **no registry attached** the
instrumented replay loop must stay within 5% of an uninstrumented
reference (every instrumentation point reduces to one ``is not None``
check).  The reference below is the pre-instrumentation ``Simulator.run``
hot loop, inlined verbatim minus the obs guards, driven over the same
trace and an identically configured cache.

Timing discipline: shared machines drift (CPU contention, frequency
scaling), so a single A/B pair proves nothing.  Each variant is run
many times in alternating order and the *minimum* is compared — the
minimum estimates the uncontended cost of each variant, which is the
quantity the 5% bound is about.
"""

from __future__ import annotations

import time

from repro import obs
from repro._util import MIB
from repro.cache import SlabCache, SizeClassConfig
from repro.policies import make_policy
from repro.sim.metrics import MetricsCollector
from repro.sim.service import ServiceTimeModel
from repro.sim.simulator import Simulator
from repro.traces import ETC, generate

REQUESTS = 80_000
WINDOW = 20_000
ROUNDS = 10
MAX_DISABLED_OVERHEAD = 0.05


def _fresh_cache() -> SlabCache:
    return SlabCache(8 * MIB, make_policy("pama", value_window=WINDOW),
                     SizeClassConfig(slab_size=64 << 10))


def _reference_replay(trace) -> float:
    """The seed (pre-obs) Simulator.run hot loop, timed."""
    cache = _fresh_cache()
    service = ServiceTimeModel()
    metrics = MetricsCollector(WINDOW, lambda: (
        cache.class_slab_distribution(), cache.slab_distribution()))
    cache_get = cache.get
    cache_set = cache.set
    record_hit = metrics.record_hit
    record_miss = metrics.record_miss

    started = time.perf_counter()
    for op, key, key_size, value_size, penalty in trace.iter_rows():
        if op == 0:
            item = cache_get(key, (key_size, value_size, penalty))
            if item is not None:
                record_hit(service.hit(item.total_size))
            else:
                record_miss(service.miss(penalty))
                cache_set(key, key_size, value_size, penalty)
        elif op == 1:
            cache_set(key, key_size, value_size, penalty)
        else:
            cache.delete(key)
    elapsed = time.perf_counter() - started
    metrics.flush()
    return elapsed


def _instrumented_replay(trace, enabled: bool) -> float:
    if enabled:
        obs.enable()
    try:
        sim = Simulator(_fresh_cache(), ServiceTimeModel(),
                        window_gets=WINDOW)
        return sim.run(trace).elapsed_seconds
    finally:
        if enabled:
            obs.disable()


def _timeline_replay(trace) -> float:
    """Replay with a TimelineRecorder attached (obs otherwise off)."""
    sim = Simulator(_fresh_cache(), ServiceTimeModel(), window_gets=WINDOW,
                    timeline=obs.TimelineRecorder(stride=WINDOW))
    return sim.run(trace).elapsed_seconds


def measure(trace, rounds: int = ROUNDS) -> dict[str, float]:
    """Alternating-order best-of-N timings per variant.

    Reversing the execution order every round cancels monotonic drift
    (warmup, throttling) that would otherwise bias one variant.
    """
    best: dict[str, float] = {}
    runners = [("reference", lambda: _reference_replay(trace)),
               ("disabled", lambda: _instrumented_replay(trace, False)),
               ("enabled", lambda: _instrumented_replay(trace, True)),
               ("timeline", lambda: _timeline_replay(trace))]
    for round_idx in range(rounds):
        ordered = runners if round_idx % 2 == 0 else runners[::-1]
        for name, runner in ordered:
            elapsed = runner()
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
    return best


def bench_obs_disabled_overhead():
    trace = generate(ETC.scaled(0.2), REQUESTS, seed=7)
    times = measure(trace)
    overhead = times["disabled"] / times["reference"] - 1.0
    enabled_overhead = times["enabled"] / times["reference"] - 1.0
    timeline_overhead = times["timeline"] / times["reference"] - 1.0
    print(f"\nreference (uninstrumented): {times['reference'] * 1e3:8.1f} ms")
    print(f"obs disabled:               {times['disabled'] * 1e3:8.1f} ms "
          f"({overhead:+.2%})")
    print(f"obs enabled:                {times['enabled'] * 1e3:8.1f} ms "
          f"({enabled_overhead:+.2%})")
    print(f"timeline attached:          {times['timeline'] * 1e3:8.1f} ms "
          f"({timeline_overhead:+.2%})")
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"obs-disabled overhead {overhead:.2%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%}")


if __name__ == "__main__":
    bench_obs_disabled_overhead()
