"""Fig 8 — APP average request service time, trace repeated twice.

Paper's headline numbers at 16 GB: PAMA's service time is ~36% of
original Memcached's and ~67% of PSA's over the first pass, dropping
to ~11% / ~27% once the repeat pass removes cold misses.  Exact factors
depend on the (proprietary) penalty distribution; the bench asserts
the robust shape — PAMA lowest everywhere, its *relative* advantage
growing in the second half — and reports the measured factors.
"""

from benchmarks.conftest import (APP_CACHE_SIZES, PAPER_POLICIES, run_single,
                                 write_csv)
from repro._util import fmt_bytes
from repro.sim.report import format_table, series_csv


def half_service(result):
    windows = result.windows
    half = len(windows) // 2
    first = sum(w.service_sum for w in windows[:half]) / max(
        sum(w.gets for w in windows[:half]), 1)
    second = sum(w.service_sum for w in windows[half:]) / max(
        sum(w.gets for w in windows[half:]), 1)
    return first, second


def bench_fig8(benchmark, app_trace, app_sweep, capsys):
    benchmark.pedantic(
        lambda: run_single(app_trace, "pama", APP_CACHE_SIZES[0]),
        rounds=1, iterations=1)

    rows = []
    for size in APP_CACHE_SIZES:
        cmp = app_sweep[size]
        series = {name: cmp.results[name].service_time_series()
                  for name in PAPER_POLICIES}
        write_csv(f"fig8_app_service_time_{fmt_bytes(size)}.csv",
                  series_csv(series))
        for name in PAPER_POLICIES:
            first, second = half_service(cmp.results[name])
            rows.append([fmt_bytes(size), name,
                         cmp.results[name].avg_service_time * 1e3,
                         first * 1e3, second * 1e3])
    with capsys.disabled():
        print("\n[fig8] APP avg service time, ms (first / second pass)")
        print(format_table(
            ["cache", "policy", "overall_ms", "first_ms", "second_ms"],
            rows))
        small = app_sweep[APP_CACHE_SIZES[0]].results
        p1, p2 = half_service(small["pama"])
        m1, m2 = half_service(small["memcached"])
        s1, s2 = half_service(small["psa"])
        print(f"  PAMA/Memcached factor: first={p1 / m1:.2f} "
              f"second={p2 / m2:.2f}  (paper: 0.36 -> 0.11)")
        print(f"  PAMA/PSA factor:       first={p1 / s1:.2f} "
              f"second={p2 / s2:.2f}  (paper: 0.67 -> 0.27)")

    for size in APP_CACHE_SIZES:
        r = {n: app_sweep[size].results[n].avg_service_time
             for n in PAPER_POLICIES}
        assert r["pama"] <= min(r.values()) * 1.02, (size, r)

    # PAMA's relative advantage grows once cold misses are gone
    small = app_sweep[APP_CACHE_SIZES[0]].results
    p1, p2 = half_service(small["pama"])
    m1, m2 = half_service(small["memcached"])
    assert p1 / m1 < 0.95
    assert p2 / m2 < p1 / m1 + 0.05
