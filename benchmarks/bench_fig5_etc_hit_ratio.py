"""Fig 5 — ETC hit ratios under the four schemes at 3 cache sizes.

Paper's shape: pre-PAMA highest, PSA next, PAMA below PSA (it trades
hit ratio for service time), original Memcached lowest; gaps narrow as
the cache grows; smaller caches show more window-to-window variation.
"""

from benchmarks.conftest import (ETC_CACHE_SIZES, PAPER_POLICIES, run_single,
                                 write_csv)
from repro._util import fmt_bytes
from repro.sim.report import format_table, series_csv

SMALL, MID, LARGE = ETC_CACHE_SIZES


def bench_fig5(benchmark, etc_trace, etc_sweep, capsys):
    benchmark.pedantic(lambda: run_single(etc_trace, "pre-pama", SMALL),
                       rounds=1, iterations=1)

    rows = []
    for size in ETC_CACHE_SIZES:
        cmp = etc_sweep[size]
        series = {name: cmp.results[name].hit_ratio_series()
                  for name in PAPER_POLICIES}
        write_csv(f"fig5_etc_hit_ratio_{fmt_bytes(size)}.csv",
                  series_csv(series))
        for name in PAPER_POLICIES:
            rows.append([fmt_bytes(size), name,
                         cmp.results[name].hit_ratio])
    with capsys.disabled():
        print("\n[fig5] ETC hit ratios (paper: 4/8/16 GB -> scaled "
              "16/32/64 MiB)")
        print(format_table(["cache", "policy", "hit_ratio"], rows))

    for size in ETC_CACHE_SIZES:
        r = {n: etc_sweep[size].results[n].hit_ratio
             for n in PAPER_POLICIES}
        # original Memcached lowest
        assert r["memcached"] <= min(r["psa"], r["pre-pama"], r["pama"]) \
            + 0.01, (size, r)
        # pre-PAMA at/near the top
        assert r["pre-pama"] >= max(r.values()) - 0.02, (size, r)

    # gaps shrink as the cache grows (pre-PAMA vs memcached)
    gap = {s: etc_sweep[s].results["pre-pama"].hit_ratio
           - etc_sweep[s].results["memcached"].hit_ratio
           for s in (SMALL, LARGE)}
    assert gap[LARGE] <= gap[SMALL] + 0.02

    # larger cache -> higher hit ratio for every scheme
    for name in PAPER_POLICIES:
        assert (etc_sweep[LARGE].results[name].hit_ratio
                >= etc_sweep[SMALL].results[name].hit_ratio - 0.01), name
